//! Execution traces and schedule invariant checking.

use crate::job::JobId;
use crate::placement::Region;
use fpga_rt_model::TaskId;
use serde::{Deserialize, Serialize};

/// One job's occupancy within a segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunningJob {
    /// The job.
    pub job: JobId,
    /// Its task.
    pub task: TaskId,
    /// Columns occupied.
    pub area: u32,
    /// Location (contiguous placement only).
    pub region: Option<Region>,
    /// `true` while the segment time is consumed by reconfiguration rather
    /// than execution.
    pub reconfiguring: bool,
}

/// A maximal interval during which the set of running jobs is constant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSegment {
    /// Segment start.
    pub from: f64,
    /// Segment end.
    pub to: f64,
    /// Jobs on the fabric during the segment.
    pub running: Vec<RunningJob>,
    /// Jobs that were ready but not placed during the segment.
    pub waiting: Vec<(JobId, u32)>,
}

impl TraceSegment {
    /// Busy columns during the segment.
    pub fn busy_columns(&self) -> u32 {
        self.running.iter().map(|r| r.area).sum()
    }
}

/// A full schedule trace.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Device size, for rendering and invariant checks.
    pub device_columns: u32,
    /// Segments in time order.
    pub segments: Vec<TraceSegment>,
}

impl Trace {
    /// Verify structural schedule invariants:
    ///
    /// 1. segments are contiguous in time and well-formed (`from ≤ to`);
    /// 2. total occupied area never exceeds the device;
    /// 3. under contiguous placement, no two concurrently running jobs
    ///    overlap in columns.
    ///
    /// Returns the first violated invariant as an error string.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut prev_end: Option<f64> = None;
        for (i, seg) in self.segments.iter().enumerate() {
            if seg.from > seg.to {
                return Err(format!("segment {i} has from > to"));
            }
            if let Some(pe) = prev_end {
                if (seg.from - pe).abs() > 1e-9 {
                    return Err(format!(
                        "segment {i} starts at {} but previous ended at {pe}",
                        seg.from
                    ));
                }
            }
            prev_end = Some(seg.to);
            if seg.busy_columns() > self.device_columns {
                return Err(format!(
                    "segment {i} occupies {} of {} columns",
                    seg.busy_columns(),
                    self.device_columns
                ));
            }
            let placed: Vec<&RunningJob> =
                seg.running.iter().filter(|r| r.region.is_some()).collect();
            for a in 0..placed.len() {
                for b in a + 1..placed.len() {
                    let (ra, rb) = (placed[a].region.unwrap(), placed[b].region.unwrap());
                    if ra.overlaps(&rb) {
                        return Err(format!(
                            "segment {i}: jobs {} and {} overlap ({ra:?} vs {rb:?})",
                            placed[a].job, placed[b].job
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Total time work done by `task` inside `[from, to)` — the paper's
    /// `WT_i`, measured on the actual schedule (reconfiguration time is not
    /// execution and is excluded).
    pub fn time_work(&self, task: TaskId, from: f64, to: f64) -> f64 {
        let mut sum = 0.0;
        for seg in &self.segments {
            let lo = seg.from.max(from);
            let hi = seg.to.min(to);
            if hi <= lo {
                continue;
            }
            for r in &seg.running {
                if r.task == task && !r.reconfiguring {
                    sum += hi - lo;
                }
            }
        }
        sum
    }

    /// System work `WS = Σ area·dt` of all tasks inside `[from, to)`
    /// (execution only).
    pub fn system_work(&self, from: f64, to: f64) -> f64 {
        let mut sum = 0.0;
        for seg in &self.segments {
            let lo = seg.from.max(from);
            let hi = seg.to.min(to);
            if hi <= lo {
                continue;
            }
            for r in &seg.running {
                if !r.reconfiguring {
                    sum += f64::from(r.area) * (hi - lo);
                }
            }
        }
        sum
    }

    /// Render an ASCII Gantt-style view (one row per task), `cols` characters
    /// wide. Intended for examples and debugging, not precision.
    pub fn render_ascii(&self, n_tasks: usize, cols: usize) -> String {
        let Some(last) = self.segments.last() else {
            return String::from("(empty trace)\n");
        };
        let span = last.to.max(1e-12);
        let mut rows = vec![vec![b'.'; cols]; n_tasks];
        for seg in &self.segments {
            let a = ((seg.from / span) * cols as f64).floor() as usize;
            let b = (((seg.to / span) * cols as f64).ceil() as usize).min(cols);
            for r in &seg.running {
                if r.task.0 < n_tasks {
                    let ch = if r.reconfiguring { b'~' } else { b'#' };
                    for c in &mut rows[r.task.0][a.min(cols - 1)..b] {
                        *c = ch;
                    }
                }
            }
        }
        let mut out = String::new();
        for (i, row) in rows.into_iter().enumerate() {
            out.push_str(&format!("τ{i:<3} |"));
            out.push_str(core::str::from_utf8(&row).expect("ascii"));
            out.push_str("|\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(from: f64, to: f64, running: Vec<RunningJob>) -> TraceSegment {
        TraceSegment { from, to, running, waiting: vec![] }
    }

    fn rj(job: u64, task: usize, area: u32, region: Option<Region>) -> RunningJob {
        RunningJob { job: JobId(job), task: TaskId(task), area, region, reconfiguring: false }
    }

    #[test]
    fn invariants_pass_for_valid_trace() {
        let t = Trace {
            device_columns: 10,
            segments: vec![
                seg(0.0, 1.0, vec![rj(0, 0, 6, Some(Region::new(0, 6)))]),
                seg(
                    1.0,
                    2.0,
                    vec![
                        rj(0, 0, 6, Some(Region::new(0, 6))),
                        rj(1, 1, 4, Some(Region::new(6, 4))),
                    ],
                ),
            ],
        };
        t.check_invariants().unwrap();
    }

    #[test]
    fn invariants_catch_overcommit_and_overlap() {
        let over = Trace {
            device_columns: 5,
            segments: vec![seg(0.0, 1.0, vec![rj(0, 0, 3, None), rj(1, 1, 3, None)])],
        };
        assert!(over.check_invariants().is_err());

        let overlap = Trace {
            device_columns: 10,
            segments: vec![seg(
                0.0,
                1.0,
                vec![rj(0, 0, 4, Some(Region::new(0, 4))), rj(1, 1, 4, Some(Region::new(2, 4)))],
            )],
        };
        assert!(overlap.check_invariants().is_err());
    }

    #[test]
    fn invariants_catch_time_gap() {
        let t = Trace {
            device_columns: 10,
            segments: vec![seg(0.0, 1.0, vec![]), seg(1.5, 2.0, vec![])],
        };
        assert!(t.check_invariants().is_err());
    }

    #[test]
    fn work_accounting() {
        let t = Trace {
            device_columns: 10,
            segments: vec![
                seg(0.0, 2.0, vec![rj(0, 0, 6, None)]),
                seg(2.0, 3.0, vec![rj(0, 0, 6, None), rj(1, 1, 4, None)]),
            ],
        };
        assert!((t.time_work(TaskId(0), 0.0, 3.0) - 3.0).abs() < 1e-12);
        assert!((t.time_work(TaskId(1), 0.0, 3.0) - 1.0).abs() < 1e-12);
        assert!((t.time_work(TaskId(0), 1.0, 2.5) - 1.5).abs() < 1e-12);
        assert!((t.system_work(0.0, 3.0) - (6.0 * 3.0 + 4.0 * 1.0)).abs() < 1e-12);
    }

    #[test]
    fn reconfig_time_excluded_from_work() {
        let mut r = rj(0, 0, 6, None);
        r.reconfiguring = true;
        let t = Trace { device_columns: 10, segments: vec![seg(0.0, 1.0, vec![r])] };
        assert_eq!(t.time_work(TaskId(0), 0.0, 1.0), 0.0);
        assert_eq!(t.system_work(0.0, 1.0), 0.0);
    }

    #[test]
    fn ascii_rendering_smoke() {
        let t =
            Trace { device_columns: 10, segments: vec![seg(0.0, 1.0, vec![rj(0, 0, 6, None)])] };
        let art = t.render_ascii(2, 20);
        assert!(art.contains('#'));
        assert!(art.lines().count() == 2);
        assert_eq!(Trace::default().render_ascii(1, 10), "(empty trace)\n");
    }
}
