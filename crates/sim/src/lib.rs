//! # fpga-rt-sim
//!
//! Discrete-event simulator for global EDF scheduling of hardware tasks on a
//! 1-D partially runtime-reconfigurable FPGA, implementing the two scheduler
//! variants of *Guan et al., IPDPS 2007* (Definitions 1–2):
//!
//! * **EDF-FkF** (First-k-Fit): scan the deadline-ordered ready queue and
//!   place jobs greedily, stopping at the first job that does not fit.
//! * **EDF-NF** (Next-Fit): same scan, but *skip* jobs that do not fit and
//!   keep placing later-deadline jobs behind them.
//!
//! The paper's evaluation simulates the synchronous release pattern (all
//! tasks released at time 0) as *"a coarse upper bound on the fraction of
//! the task sets that are schedulable"*; [`simulate`] reproduces exactly
//! that, and the engine additionally supports:
//!
//! * **Placement policies** ([`PlacementPolicy`]): the paper's assumption of
//!   unrestricted migration (a job fits iff total idle area suffices), plus
//!   contiguous first/best/worst-fit free-list placement for the
//!   fragmentation study the paper defers to future work.
//! * **Reconfiguration overhead** ([`ReconfigOverhead`]): zero by default
//!   (paper assumption), constant or per-column time charged whenever a job
//!   is (re)loaded onto the fabric.
//! * **Scheduler extensions**: partitioned EDF (Danne & Platzner's companion
//!   approach, ref \[10\]) and an EDF-US-style hybrid (future work, §7).
//! * **Work-conserving validation**: optional per-dispatch checks of the
//!   paper's Lemma 1 and Lemma 2 α bounds against the actual occupancy.
//!
//! The engine is deterministic: identical inputs produce identical traces,
//! event ties are broken by (time, kind, job id).
//!
//! ## Example
//!
//! ```
//! use fpga_rt_model::{Fpga, TaskSet};
//! use fpga_rt_sim::{simulate, SchedulerKind, SimConfig};
//!
//! let ts: TaskSet<f64> = TaskSet::try_from_tuples(&[
//!     (2.10, 5.0, 5.0, 7),
//!     (2.00, 7.0, 7.0, 7),
//! ]).unwrap();
//! let fpga = Fpga::new(10).unwrap();
//! let nf = simulate(&ts, &fpga, &SimConfig::default().with_scheduler(SchedulerKind::EdfNf)).unwrap();
//! assert!(nf.schedulable());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod error;
pub mod job;
pub mod metrics;
pub mod partitioned;
pub mod placement;
pub mod rng;
pub mod scheduler;
pub mod trace;

pub use config::{
    hyperperiod, Horizon, ReconfigOverhead, ReleaseModel, SchedulerKind, SimConfig, TraceLevel,
};
pub use engine::{simulate, simulate_f64, SimOutcome};
pub use error::SimError;
pub use job::{Job, JobId, JobState};
pub use metrics::{MissRecord, SimMetrics};
pub use partitioned::{partition_taskset, PartitionPlan, PartitionedTest};
pub use placement::{FitStrategy, PlacementPolicy, Region};
pub use trace::{Trace, TraceSegment};
