//! Simulation configuration.

use crate::error::SimError;
use crate::partitioned::PartitionPlan;
use crate::placement::PlacementPolicy;
use serde::{Deserialize, Serialize};

/// How long to simulate.
///
/// The paper's workloads have real-valued periods, so hyperperiods are
/// useless; like the paper we simulate the synchronous (all offsets 0)
/// pattern for a fixed span and treat the result as a *coarse upper bound*
/// on schedulability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Horizon {
    /// Simulate until the given absolute time.
    Absolute(f64),
    /// Simulate for `factor × Tmax` where `Tmax` is the largest period in
    /// the taskset (so every task releases at least ≈`factor` jobs).
    PeriodsOfTmax(f64),
}

impl Default for Horizon {
    fn default() -> Self {
        // ≥100 jobs of the slowest task; with the paper's T ∈ (5, 20) this
        // is ≥2000 time units and 500–4000 jobs of each faster task.
        Horizon::PeriodsOfTmax(100.0)
    }
}

impl Horizon {
    /// Resolve to an absolute time for a taskset with largest period `tmax`.
    pub fn resolve(&self, tmax: f64) -> Result<f64, SimError> {
        let h = match *self {
            Horizon::Absolute(t) => t,
            Horizon::PeriodsOfTmax(f) => f * tmax,
        };
        if !(h.is_finite() && h > 0.0) {
            return Err(SimError::InvalidHorizon { value: h });
        }
        Ok(h)
    }
}

/// Exact hyperperiod of a taskset whose periods are (numerically) integers:
/// the LCM of the periods, or `None` when some period is non-integral or
/// the LCM exceeds `cap`.
///
/// For the synchronous pattern with zero offsets, simulating one
/// hyperperiod plus the largest deadline decides schedulability of that
/// release pattern *exactly* (the schedule repeats). The paper's random
/// workloads have real-valued periods, so this only applies to structured
/// inputs like its Tables 1–3 (periods 5 and 7 → hyperperiod 35).
pub fn hyperperiod(taskset: &fpga_rt_model::TaskSet<f64>, cap: f64) -> Option<f64> {
    fn gcd(mut a: u64, mut b: u64) -> u64 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }
    let mut lcm: u64 = 1;
    for t in taskset {
        let p: f64 = t.period();
        let rounded = p.round();
        if (p - rounded).abs() > 1e-9 || rounded < 1.0 {
            return None;
        }
        let p = rounded as u64;
        lcm = lcm.checked_div(gcd(lcm, p))?.checked_mul(p)?;
        if lcm as f64 > cap {
            return None;
        }
    }
    Some(lcm as f64)
}

/// Reconfiguration-overhead model.
///
/// The paper assumes zero overhead but notes (Section 1) that real partial
/// reconfiguration costs milliseconds, roughly proportional to the area
/// reconfigured, and that the analysis accommodates it by inflating
/// execution times. The simulator charges the overhead whenever a job is
/// loaded onto the fabric — including re-loads after a preemption — during
/// which the job occupies its columns without making progress.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ReconfigOverhead {
    /// No overhead (paper assumption).
    #[default]
    None,
    /// Fixed time per (re)placement.
    Constant(f64),
    /// Time proportional to the job's area: `per_column × Ak`.
    PerColumn(f64),
}

impl ReconfigOverhead {
    /// Overhead charged for placing a job of `area` columns.
    pub fn for_area(&self, area: u32) -> f64 {
        match *self {
            ReconfigOverhead::None => 0.0,
            ReconfigOverhead::Constant(c) => c,
            ReconfigOverhead::PerColumn(p) => p * f64::from(area),
        }
    }

    /// Validate the parameters.
    pub fn validate(&self) -> Result<(), SimError> {
        let v = match *self {
            ReconfigOverhead::None => return Ok(()),
            ReconfigOverhead::Constant(c) => c,
            ReconfigOverhead::PerColumn(p) => p,
        };
        if !(v.is_finite() && v >= 0.0) {
            return Err(SimError::InvalidOverhead { value: v });
        }
        Ok(())
    }
}

/// Which scheduling algorithm the engine dispatches.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// EDF-First-k-Fit (Definition 1): stop the placement scan at the first
    /// ready job that does not fit.
    EdfFkf,
    /// EDF-Next-Fit (Definition 2): skip jobs that do not fit and keep
    /// scanning.
    #[default]
    EdfNf,
    /// EDF-US-style hybrid (paper §7 future work, after Srinivasan & Baruah):
    /// tasks whose *system* utilization share `Ci·Ai/(Ti·A(H))` exceeds
    /// `threshold` get statically highest priority; the rest are ordered by
    /// EDF. Placement scan follows EDF-NF (skip on misfit).
    EdfUs {
        /// System-utilization share above which a task is "heavy".
        threshold: f64,
    },
    /// Partitioned EDF (Danne & Platzner, ref \[10\]): each task is pinned to
    /// a fixed-width partition; execution within a partition is serialized
    /// under uniprocessor EDF.
    Partitioned(PartitionPlan),
}

impl SchedulerKind {
    /// Short display name used in metrics and experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::EdfFkf => "EDF-FkF",
            SchedulerKind::EdfNf => "EDF-NF",
            SchedulerKind::EdfUs { .. } => "EDF-US",
            SchedulerKind::Partitioned(_) => "P-EDF",
        }
    }
}

/// When jobs arrive.
///
/// The paper's task model covers "periodic or sporadic" tasks but its
/// simulation only exercises the synchronous periodic pattern (all offsets
/// zero) — the pattern its acceptance figures are built on. The other two
/// models quantify how much that choice matters (experiment X11):
///
/// * [`ReleaseModel::RandomOffsets`] — periodic with per-task initial
///   offsets drawn uniformly from `[0, Ti)`;
/// * [`ReleaseModel::Sporadic`] — `Ti` becomes a *minimum* inter-arrival
///   time; each gap is `Ti + U(0, jitter·Ti)`.
///
/// Sampling uses the crate-internal deterministic [`crate::rng::SplitMix64`]
/// so results are reproducible bit-for-bit from the seed.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ReleaseModel {
    /// All tasks release at time 0 and strictly every `Ti` (paper default).
    #[default]
    Synchronous,
    /// Periodic with random initial offsets in `[0, Ti)`.
    RandomOffsets {
        /// RNG seed (deterministic).
        seed: u64,
    },
    /// Sporadic: inter-arrival `Ti + U(0, jitter·Ti)`.
    Sporadic {
        /// Fractional jitter (≥ 0); 0 degenerates to periodic.
        jitter: f64,
        /// RNG seed (deterministic).
        seed: u64,
    },
}

impl ReleaseModel {
    /// Validate parameters.
    pub fn validate(&self) -> Result<(), SimError> {
        if let ReleaseModel::Sporadic { jitter, .. } = *self {
            if !(jitter.is_finite() && jitter >= 0.0) {
                return Err(SimError::InvalidJitter { value: jitter });
            }
        }
        Ok(())
    }
}

/// How much trace data to retain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TraceLevel {
    /// Keep no trace (fastest; metrics only).
    #[default]
    Off,
    /// Record every schedule segment (who ran where, from when to when).
    Full,
}

/// Complete simulation configuration (builder-style setters).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Scheduling algorithm.
    pub scheduler: SchedulerKind,
    /// Area management / placement policy.
    pub placement: PlacementPolicy,
    /// Reconfiguration overhead model.
    pub overhead: ReconfigOverhead,
    /// Simulation span.
    pub horizon: Horizon,
    /// Job arrival model.
    pub release: ReleaseModel,
    /// Stop at the first deadline miss (the schedulability question) instead
    /// of running to the horizon collecting every miss.
    pub stop_at_first_miss: bool,
    /// Trace retention.
    pub trace: TraceLevel,
    /// Check the Lemma 1 / Lemma 2 α-work-conserving bounds at every
    /// dispatch (only meaningful under [`PlacementPolicy::FreeMigration`]
    /// with zero overhead — the lemmas' assumptions). Violations are
    /// recorded in the metrics, not fatal.
    pub validate_alpha: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            scheduler: SchedulerKind::default(),
            placement: PlacementPolicy::default(),
            overhead: ReconfigOverhead::default(),
            horizon: Horizon::default(),
            release: ReleaseModel::default(),
            stop_at_first_miss: true,
            trace: TraceLevel::Off,
            validate_alpha: false,
        }
    }
}

impl SimConfig {
    /// Set the scheduler.
    pub fn with_scheduler(mut self, s: SchedulerKind) -> Self {
        self.scheduler = s;
        self
    }

    /// Set the placement policy.
    pub fn with_placement(mut self, p: PlacementPolicy) -> Self {
        self.placement = p;
        self
    }

    /// Set the reconfiguration overhead.
    pub fn with_overhead(mut self, o: ReconfigOverhead) -> Self {
        self.overhead = o;
        self
    }

    /// Set the horizon.
    pub fn with_horizon(mut self, h: Horizon) -> Self {
        self.horizon = h;
        self
    }

    /// Set the release model.
    pub fn with_release(mut self, r: ReleaseModel) -> Self {
        self.release = r;
        self
    }

    /// Run to the horizon collecting all misses.
    pub fn collect_all_misses(mut self) -> Self {
        self.stop_at_first_miss = false;
        self
    }

    /// Record a full trace.
    pub fn with_full_trace(mut self) -> Self {
        self.trace = TraceLevel::Full;
        self
    }

    /// Enable α-bound validation.
    pub fn with_alpha_validation(mut self) -> Self {
        self.validate_alpha = true;
        self
    }

    /// Validate parameter sanity.
    pub fn validate(&self) -> Result<(), SimError> {
        self.overhead.validate()?;
        self.release.validate()?;
        if let SchedulerKind::EdfUs { threshold } = self.scheduler {
            if !(threshold > 0.0 && threshold <= 1.0) {
                return Err(SimError::InvalidThreshold { value: threshold });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_resolution() {
        assert_eq!(Horizon::Absolute(50.0).resolve(7.0).unwrap(), 50.0);
        assert_eq!(Horizon::PeriodsOfTmax(10.0).resolve(7.0).unwrap(), 70.0);
        assert!(Horizon::Absolute(-1.0).resolve(7.0).is_err());
        assert!(Horizon::PeriodsOfTmax(f64::INFINITY).resolve(7.0).is_err());
    }

    #[test]
    fn overhead_model() {
        assert_eq!(ReconfigOverhead::None.for_area(10), 0.0);
        assert_eq!(ReconfigOverhead::Constant(0.5).for_area(10), 0.5);
        assert_eq!(ReconfigOverhead::PerColumn(0.1).for_area(10), 1.0);
        assert!(ReconfigOverhead::Constant(-0.1).validate().is_err());
        assert!(ReconfigOverhead::PerColumn(0.0).validate().is_ok());
    }

    #[test]
    fn config_builder_and_validation() {
        let c = SimConfig::default()
            .with_scheduler(SchedulerKind::EdfFkf)
            .with_overhead(ReconfigOverhead::Constant(0.25))
            .collect_all_misses()
            .with_full_trace()
            .with_alpha_validation();
        assert_eq!(c.scheduler, SchedulerKind::EdfFkf);
        assert!(!c.stop_at_first_miss);
        assert_eq!(c.trace, TraceLevel::Full);
        assert!(c.validate_alpha);
        assert!(c.validate().is_ok());
        let bad = SimConfig::default().with_scheduler(SchedulerKind::EdfUs { threshold: 1.5 });
        assert!(bad.validate().is_err());
    }

    #[test]
    fn scheduler_names() {
        assert_eq!(SchedulerKind::EdfFkf.name(), "EDF-FkF");
        assert_eq!(SchedulerKind::EdfNf.name(), "EDF-NF");
        assert_eq!(SchedulerKind::EdfUs { threshold: 0.5 }.name(), "EDF-US");
    }

    #[test]
    fn hyperperiod_of_integer_periods() {
        use fpga_rt_model::TaskSet;
        let ts: TaskSet<f64> =
            TaskSet::try_from_tuples(&[(1.26, 7.0, 7.0, 9), (0.95, 5.0, 5.0, 6)]).unwrap();
        assert_eq!(hyperperiod(&ts, 1e6), Some(35.0));
        // Non-integer period → None.
        let ts: TaskSet<f64> = TaskSet::try_from_tuples(&[(1.0, 5.5, 5.5, 1)]).unwrap();
        assert_eq!(hyperperiod(&ts, 1e6), None);
        // Cap exceeded → None.
        let ts: TaskSet<f64> = TaskSet::try_from_tuples(&[
            (1.0, 97.0, 97.0, 1),
            (1.0, 89.0, 89.0, 1),
            (1.0, 83.0, 83.0, 1),
        ])
        .unwrap();
        assert_eq!(hyperperiod(&ts, 1e4), None);
        assert_eq!(hyperperiod(&ts, 1e6), Some(97.0 * 89.0 * 83.0));
    }

    #[test]
    fn release_model_validation() {
        assert!(ReleaseModel::Sporadic { jitter: 0.5, seed: 1 }.validate().is_ok());
        assert!(ReleaseModel::Sporadic { jitter: -1.0, seed: 1 }.validate().is_err());
        assert!(ReleaseModel::Synchronous.validate().is_ok());
        assert!(ReleaseModel::RandomOffsets { seed: 7 }.validate().is_ok());
    }

    #[test]
    fn serde_round_trip() {
        let c = SimConfig::default().with_overhead(ReconfigOverhead::PerColumn(0.01));
        let json = serde_json::to_string(&c).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
