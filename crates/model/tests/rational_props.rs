//! Property tests for `Rat64`: ordered-field laws on the overflow-free
//! domain, exactness of floor/ceil/recip, and the continued-fraction
//! converter.

use fpga_rt_model::{Rat64, Time};
use proptest::prelude::*;

/// Small rationals whose products/sums stay far from i64 overflow.
fn small() -> impl Strategy<Value = Rat64> {
    (-10_000i64..10_000, 1i64..10_000).prop_map(|(n, d)| Rat64::new(n, d).unwrap())
}

fn nonzero() -> impl Strategy<Value = Rat64> {
    small().prop_filter("non-zero", |r| *r != Rat64::ZERO)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn add_commutes(a in small(), b in small()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn mul_commutes(a in small(), b in small()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn add_associates(a in small(), b in small(), c in small()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn mul_distributes(a in small(), b in small(), c in small()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn identities(a in small()) {
        prop_assert_eq!(a + Rat64::ZERO, a);
        prop_assert_eq!(a * Rat64::ONE, a);
        prop_assert_eq!(a - a, Rat64::ZERO);
        prop_assert_eq!(a + (-a), Rat64::ZERO);
    }

    #[test]
    fn division_inverts_multiplication(a in small(), b in nonzero()) {
        prop_assert_eq!((a * b) / b, a);
        prop_assert_eq!((a / b) * b, a);
    }

    #[test]
    fn recip_involution(a in nonzero()) {
        prop_assert_eq!(a.recip().recip(), a);
        prop_assert_eq!(a * a.recip(), Rat64::ONE);
    }

    /// Ordering agrees with subtraction sign and is total.
    #[test]
    fn order_consistency(a in small(), b in small()) {
        use core::cmp::Ordering;
        let by_sub = (a - b).numer().cmp(&0);
        prop_assert_eq!(a.cmp(&b), by_sub);
        match a.cmp(&b) {
            Ordering::Less => prop_assert!(a < b),
            Ordering::Equal => prop_assert!(a == b),
            Ordering::Greater => prop_assert!(a > b),
        }
    }

    /// Order is translation- and positive-scale-invariant.
    #[test]
    fn order_invariance(a in small(), b in small(), c in small(), s in nonzero()) {
        prop_assert_eq!(a < b, a + c < b + c);
        if s > Rat64::ZERO {
            prop_assert_eq!(a < b, a * s < b * s);
        } else {
            prop_assert_eq!(a < b, a * s > b * s);
        }
    }

    /// floor/ceil bracket the value, agree on integers, and floor matches
    /// the `Time` trait.
    #[test]
    fn floor_ceil_bracket(a in small()) {
        let f = Rat64::from_int(a.floor());
        let c = Rat64::from_int(a.ceil());
        prop_assert!(f <= a && a <= c);
        prop_assert!(a - f < Rat64::ONE);
        prop_assert!(c - a < Rat64::ONE);
        if a.is_integer() {
            prop_assert_eq!(f, c);
        } else {
            prop_assert_eq!(c - f, Rat64::ONE);
        }
        prop_assert_eq!(a.floor(), Time::floor_i64(a));
    }

    /// Normalization is canonical: equal values have identical
    /// representation.
    #[test]
    fn canonical_representation(n in -500i64..500, d in 1i64..500, k in 1i64..50) {
        let a = Rat64::new(n, d).unwrap();
        let b = Rat64::new(n * k, d * k).unwrap();
        prop_assert_eq!(a.numer(), b.numer());
        prop_assert_eq!(a.denom(), b.denom());
        let g = gcd(a.numer().unsigned_abs(), a.denom() as u64);
        prop_assert!(a == Rat64::ZERO || g == 1);
    }

    /// to_f64 is order-preserving on the small domain (spacing ≥ 1/10⁸ is
    /// far above f64 epsilon here).
    #[test]
    fn to_f64_monotone(a in small(), b in small()) {
        if a < b {
            prop_assert!(a.to_f64() <= b.to_f64());
        }
    }

    /// Round-trip: any small rational reconstructed from its f64 value via
    /// continued fractions is recovered exactly.
    #[test]
    fn approx_f64_round_trip(n in -2000i64..2000, d in 1i64..2000) {
        let a = Rat64::new(n, d).unwrap();
        let back = Rat64::approx_f64(a.to_f64(), 2_000).unwrap();
        prop_assert_eq!(back, a);
    }

    /// Checked ops agree with operators whenever they succeed.
    #[test]
    fn checked_matches_panicking(a in small(), b in small()) {
        prop_assert_eq!(a.checked_add(b).unwrap(), a + b);
        prop_assert_eq!(a.checked_sub(b).unwrap(), a - b);
        prop_assert_eq!(a.checked_mul(b).unwrap(), a * b);
        if b != Rat64::ZERO {
            prop_assert_eq!(a.checked_div(b).unwrap(), a / b);
        } else {
            prop_assert!(a.checked_div(b).is_none());
        }
    }

    /// Serde round-trips exactly.
    #[test]
    fn serde_round_trip(a in small()) {
        let json = serde_json::to_string(&a).unwrap();
        prop_assert_eq!(serde_json::from_str::<Rat64>(&json).unwrap(), a);
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}
