//! Error types for model construction and validation.

use core::fmt;

/// Errors raised while constructing or validating model objects.
///
/// Every constructor in this crate validates its inputs; downstream crates
/// (analysis, simulation) can therefore assume well-formed tasksets and never
/// re-check positivity or finiteness on hot paths.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A timing parameter (C, D or T) was zero, negative, NaN or infinite.
    NonPositiveTime {
        /// Which parameter was rejected (`"exec"`, `"deadline"`, `"period"`).
        field: &'static str,
        /// Human-readable rendering of the offending value.
        value: String,
    },
    /// A task area of zero columns was requested (areas are ≥ 1).
    ZeroArea,
    /// A device with zero columns was requested.
    ZeroDevice,
    /// A rational number was constructed with a zero denominator.
    ZeroDenominator,
    /// A rational operation overflowed the 64-bit normalized representation.
    RationalOverflow {
        /// The operation that overflowed (`"add"`, `"mul"`, ...).
        op: &'static str,
    },
    /// A task occupies more columns than the device provides.
    TaskWiderThanDevice {
        /// Index of the offending task within its taskset.
        task: usize,
        /// The task's area in columns.
        area: u32,
        /// The device's total number of columns.
        device: u32,
    },
    /// An empty taskset was supplied where at least one task is required.
    EmptyTaskSet,
    /// A floating-point value could not be represented exactly as a rational.
    InexactConversion {
        /// The value that could not be converted.
        value: f64,
    },
    /// A task inside a collection failed validation; wraps the underlying
    /// error together with the task's position so batch constructors such as
    /// [`crate::TaskSet::try_from_tuples`] do not lose which entry was bad.
    InvalidTask {
        /// Index of the offending task within the input collection.
        task: usize,
        /// The underlying validation failure (carries the offending value).
        source: Box<ModelError>,
    },
    /// A [`crate::LiveTaskSet`] handle did not name a currently-admitted
    /// task (already released, or from another live set).
    UnknownTaskHandle {
        /// The stale handle value.
        handle: u64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NonPositiveTime { field, value } => {
                write!(f, "task {field} must be a positive finite time, got {value}")
            }
            ModelError::ZeroArea => write!(f, "task area must be at least one column"),
            ModelError::ZeroDevice => write!(f, "device must have at least one column"),
            ModelError::ZeroDenominator => write!(f, "rational denominator must be non-zero"),
            ModelError::RationalOverflow { op } => {
                write!(f, "rational {op} overflowed the normalized 64-bit representation")
            }
            ModelError::TaskWiderThanDevice { task, area, device } => {
                write!(f, "task #{task} occupies {area} columns but the device only has {device}")
            }
            ModelError::EmptyTaskSet => write!(f, "taskset must contain at least one task"),
            ModelError::InexactConversion { value } => {
                write!(f, "{value} has no exact small-rational representation")
            }
            ModelError::InvalidTask { task, source } => {
                write!(f, "task #{task}: {source}")
            }
            ModelError::UnknownTaskHandle { handle } => {
                write!(f, "no live task with handle {handle} (already released?)")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::NonPositiveTime { field: "exec", value: "-1".into() };
        assert!(e.to_string().contains("exec"));
        let e = ModelError::TaskWiderThanDevice { task: 3, area: 12, device: 10 };
        let s = e.to_string();
        assert!(s.contains("#3") && s.contains("12") && s.contains("10"));
    }

    #[test]
    fn invalid_task_carries_index_and_value() {
        let inner = ModelError::NonPositiveTime { field: "period", value: "-4".into() };
        let e = ModelError::InvalidTask { task: 2, source: Box::new(inner) };
        let s = e.to_string();
        assert!(s.contains("#2") && s.contains("period") && s.contains("-4"), "{s}");
    }

    #[test]
    fn unknown_handle_names_the_handle() {
        let e = ModelError::UnknownTaskHandle { handle: 17 };
        assert!(e.to_string().contains("17"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
