//! The reconfigurable device model.

use crate::error::ModelError;
use serde::{Deserialize, Serialize};

/// A 1-D partially runtime-reconfigurable FPGA with `A(H)` homogeneous
/// columns.
///
/// Per the paper's assumptions (Section 1):
///
/// * the fabric is 1-D reconfigurable — each job occupies a contiguous set
///   of columns;
/// * the whole area is homogeneous (no pre-configured cells);
/// * reconfiguration overhead is zero (relaxable in the simulator);
/// * unrestricted migration — the fabric can be defragmented for free, so a
///   job fits whenever the total idle area is at least its area (the
///   simulator's contiguous placement modes relax this too).
///
/// An identical multiprocessor with `m` CPUs is exactly `Fpga::new(m)` with
/// every task given area 1 ([`Fpga::multiprocessor`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(try_from = "u32", into = "u32")]
pub struct Fpga {
    columns: u32,
}

impl TryFrom<u32> for Fpga {
    type Error = ModelError;
    fn try_from(columns: u32) -> Result<Self, ModelError> {
        Fpga::new(columns)
    }
}

impl From<Fpga> for u32 {
    fn from(f: Fpga) -> u32 {
        f.columns
    }
}

impl Fpga {
    /// A device with `columns` ≥ 1 columns.
    pub fn new(columns: u32) -> Result<Self, ModelError> {
        if columns == 0 {
            return Err(ModelError::ZeroDevice);
        }
        Ok(Fpga { columns })
    }

    /// A device modelling an identical multiprocessor with `m` CPUs
    /// (unit-area tasks on an `m`-column fabric).
    pub fn multiprocessor(m: u32) -> Result<Self, ModelError> {
        Self::new(m)
    }

    /// Total area `A(H)` in columns.
    #[inline]
    pub fn columns(&self) -> u32 {
        self.columns
    }

    /// Total area `A(H)` as `f64`, for reporting.
    #[inline]
    pub fn area_f64(&self) -> f64 {
        f64::from(self.columns)
    }
}

impl core::fmt::Display for Fpga {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "FPGA[{} columns]", self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        assert_eq!(Fpga::new(10).unwrap().columns(), 10);
        assert_eq!(Fpga::new(0), Err(ModelError::ZeroDevice));
        assert_eq!(Fpga::multiprocessor(4).unwrap().columns(), 4);
    }

    #[test]
    fn display() {
        assert_eq!(Fpga::new(100).unwrap().to_string(), "FPGA[100 columns]");
    }

    #[test]
    fn serde_validates() {
        let f: Fpga = serde_json::from_str("10").unwrap();
        assert_eq!(f.columns(), 10);
        assert!(serde_json::from_str::<Fpga>("0").is_err());
        assert_eq!(serde_json::to_string(&f).unwrap(), "10");
    }
}
