//! Exact rational arithmetic on a normalized `i64/i64` representation.
//!
//! [`Rat64`] implements the [`crate::Time`] trait so that every
//! schedulability test can run in *exact* arithmetic. This is not a luxury:
//! the GN2 test of the paper compares
//! `Σ Ai·min(βλk(i), 1)` against `(Abnd − Amin)(1 − λk) + Amin`, and for the
//! paper's Table 1 the two sides are **equal** (both `69/25` at
//! `λ = C2/T2`), so the verdict rests entirely on whether the comparison is
//! strict. Floating point cannot distinguish "exactly equal" from "equal
//! after rounding"; only exact arithmetic proves which side of the knife
//! edge the taskset sits on.
//!
//! All intermediate products are computed in `i128` and renormalized, so any
//! value whose reduced form fits in `i64/i64` is handled without loss.
//! Overflow of the *reduced* form is a programming error for this domain
//! (task parameters are small decimals) and panics with a descriptive
//! message; `checked_*` variants are provided for fallible callers.

use crate::error::ModelError;
use crate::time::Time;
use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, Div, Mul, Neg, Sub};
use serde::{Deserialize, Serialize};

/// An exact rational number `num/den` with `den > 0` and `gcd(|num|, den) = 1`.
///
/// ```
/// use fpga_rt_model::{Rat64, Time};
/// let c = Rat64::new(126, 100).unwrap(); // 1.26 exactly
/// let t = Rat64::from_int(7);
/// assert_eq!((c / t).to_string(), "9/50");
/// assert_eq!(Rat64::ratio(126, 100), c);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(try_from = "RawRat", into = "RawRat")]
pub struct Rat64 {
    num: i64,
    den: i64,
}

/// Serde wire format for [`Rat64`]; deserialization re-normalizes and
/// re-validates so malformed input cannot break the invariants.
#[derive(Serialize, Deserialize)]
struct RawRat {
    num: i64,
    den: i64,
}

impl TryFrom<RawRat> for Rat64 {
    type Error = ModelError;
    fn try_from(raw: RawRat) -> Result<Self, ModelError> {
        Rat64::new(raw.num, raw.den)
    }
}

impl From<Rat64> for RawRat {
    fn from(r: Rat64) -> Self {
        RawRat { num: r.num, den: r.den }
    }
}

#[inline]
fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat64 {
    /// The value zero.
    pub const ZERO: Rat64 = Rat64 { num: 0, den: 1 };
    /// The value one.
    pub const ONE: Rat64 = Rat64 { num: 1, den: 1 };

    /// Construct `num/den`, normalizing sign and common factors.
    ///
    /// Returns [`ModelError::ZeroDenominator`] when `den == 0`.
    pub fn new(num: i64, den: i64) -> Result<Self, ModelError> {
        if den == 0 {
            return Err(ModelError::ZeroDenominator);
        }
        Self::normalize(num as i128, den as i128, "new")
    }

    /// Construct from an integer.
    #[inline]
    pub const fn from_int(v: i64) -> Self {
        Rat64 { num: v, den: 1 }
    }

    /// The numerator of the reduced form (sign-carrying).
    #[inline]
    pub const fn numer(self) -> i64 {
        self.num
    }

    /// The denominator of the reduced form (always positive).
    #[inline]
    pub const fn denom(self) -> i64 {
        self.den
    }

    fn normalize(mut num: i128, mut den: i128, op: &'static str) -> Result<Self, ModelError> {
        debug_assert!(den != 0);
        if den < 0 {
            num = -num;
            den = -den;
        }
        if num == 0 {
            return Ok(Rat64::ZERO);
        }
        let g = gcd_u128(num.unsigned_abs(), den as u128) as i128;
        num /= g;
        den /= g;
        let num = i64::try_from(num).map_err(|_| ModelError::RationalOverflow { op })?;
        let den = i64::try_from(den).map_err(|_| ModelError::RationalOverflow { op })?;
        Ok(Rat64 { num, den })
    }

    /// Checked addition; `None` when the reduced result overflows `i64/i64`.
    pub fn checked_add(self, rhs: Self) -> Option<Self> {
        let num = self.num as i128 * rhs.den as i128 + rhs.num as i128 * self.den as i128;
        let den = self.den as i128 * rhs.den as i128;
        Self::normalize(num, den, "add").ok()
    }

    /// Checked subtraction; see [`Rat64::checked_add`].
    pub fn checked_sub(self, rhs: Self) -> Option<Self> {
        self.checked_add(Rat64 { num: -rhs.num, den: rhs.den })
    }

    /// Checked multiplication; see [`Rat64::checked_add`].
    pub fn checked_mul(self, rhs: Self) -> Option<Self> {
        let num = self.num as i128 * rhs.num as i128;
        let den = self.den as i128 * rhs.den as i128;
        Self::normalize(num, den, "mul").ok()
    }

    /// Checked division; `None` on division by zero or overflow.
    pub fn checked_div(self, rhs: Self) -> Option<Self> {
        if rhs.num == 0 {
            return None;
        }
        let num = self.num as i128 * rhs.den as i128;
        let den = self.den as i128 * rhs.num as i128;
        Self::normalize(num, den, "div").ok()
    }

    /// The multiplicative inverse. Panics on zero.
    pub fn recip(self) -> Self {
        assert!(self.num != 0, "Rat64::recip of zero");
        Self::normalize(self.den as i128, self.num as i128, "recip")
            .expect("recip cannot overflow a normalized value")
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        Rat64 { num: self.num.abs(), den: self.den }
    }

    /// `⌊self⌋` as an exact integer.
    #[inline]
    pub fn floor(self) -> i64 {
        self.num.div_euclid(self.den)
    }

    /// `⌈self⌉` as an exact integer.
    #[inline]
    pub fn ceil(self) -> i64 {
        -(-self.num).div_euclid(self.den)
    }

    /// `true` when the value is an integer.
    #[inline]
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Best rational approximation of `v` with denominator at most
    /// `max_den`, via continued fractions.
    ///
    /// Useful for converting generator-produced `f64` parameters into exact
    /// values: `Rat64::approx_f64(1.26, 1_000) == Rat64::new(63, 50)`.
    ///
    /// Returns [`ModelError::InexactConversion`] for NaN or infinite input.
    pub fn approx_f64(v: f64, max_den: u32) -> Result<Self, ModelError> {
        if !v.is_finite() {
            return Err(ModelError::InexactConversion { value: v });
        }
        let max_den = i64::from(max_den.max(1));
        let neg = v < 0.0;
        let mut x = v.abs();
        // Convergents p/q of the continued fraction expansion of |v|.
        let (mut p0, mut q0, mut p1, mut q1) = (0i64, 1i64, 1i64, 0i64);
        for _ in 0..64 {
            let a = x.floor();
            if a > i64::MAX as f64 {
                return Err(ModelError::InexactConversion { value: v });
            }
            let a = a as i64;
            let p2 = match a.checked_mul(p1).and_then(|t| t.checked_add(p0)) {
                Some(p) => p,
                None => break,
            };
            let q2 = match a.checked_mul(q1).and_then(|t| t.checked_add(q0)) {
                Some(q) => q,
                None => break,
            };
            if q2 > max_den {
                break;
            }
            p0 = p1;
            q0 = q1;
            p1 = p2;
            q1 = q2;
            let frac = x - a as f64;
            if frac < 1e-12 {
                break;
            }
            x = 1.0 / frac;
        }
        if q1 == 0 {
            return Err(ModelError::InexactConversion { value: v });
        }
        let num = if neg { -p1 } else { p1 };
        Rat64::new(num, q1)
    }
}

impl PartialOrd for Rat64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Denominators are positive, so cross-multiplication preserves order;
        // i64×i64 always fits in i128.
        let lhs = self.num as i128 * other.den as i128;
        let rhs = other.num as i128 * self.den as i128;
        lhs.cmp(&rhs)
    }
}

impl Rat64 {
    /// `true` when a caught panic payload is a `Rat64` arithmetic-overflow
    /// panic (the operator impls below panic with a `"Rat64 overflow"`
    /// message).
    ///
    /// Callers that map overflow to a clean degradation — the CLI's exact
    /// mode (exit code 2) and the admission service's exact tier (f64
    /// fallback) — share this predicate so the panic-message contract
    /// lives in exactly one place.
    pub fn is_overflow_panic(payload: &(dyn std::any::Any + Send)) -> bool {
        payload.downcast_ref::<String>().is_some_and(|s| s.contains("Rat64 overflow"))
            || payload.downcast_ref::<&str>().is_some_and(|s| s.contains("Rat64 overflow"))
    }
}

macro_rules! panicking_op {
    ($trait:ident, $method:ident, $checked:ident, $sym:literal) => {
        impl $trait for Rat64 {
            type Output = Rat64;
            #[inline]
            fn $method(self, rhs: Rat64) -> Rat64 {
                self.$checked(rhs)
                    .unwrap_or_else(|| panic!("Rat64 overflow: {self} {} {rhs}", $sym))
            }
        }
    };
}

panicking_op!(Add, add, checked_add, "+");
panicking_op!(Sub, sub, checked_sub, "-");
panicking_op!(Mul, mul, checked_mul, "*");
panicking_op!(Div, div, checked_div, "/");

impl Neg for Rat64 {
    type Output = Rat64;
    #[inline]
    fn neg(self) -> Rat64 {
        Rat64 { num: -self.num, den: self.den }
    }
}

impl fmt::Display for Rat64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rat64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rat64({self})")
    }
}

impl From<i64> for Rat64 {
    fn from(v: i64) -> Self {
        Rat64::from_int(v)
    }
}

impl From<u32> for Rat64 {
    fn from(v: u32) -> Self {
        Rat64::from_int(i64::from(v))
    }
}

impl Time for Rat64 {
    const ZERO: Self = Rat64::ZERO;
    const ONE: Self = Rat64::ONE;

    #[inline]
    fn from_u32(v: u32) -> Self {
        Rat64::from_int(i64::from(v))
    }

    #[inline]
    fn from_i64(v: i64) -> Self {
        Rat64::from_int(v)
    }

    #[inline]
    fn floor_i64(self) -> i64 {
        self.floor()
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    #[inline]
    fn ratio(num: i64, den: i64) -> Self {
        Rat64::new(num, den).expect("Time::ratio with zero denominator")
    }

    #[inline]
    fn is_valid(self) -> bool {
        self.den > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rat64 {
        Rat64::new(n, d).unwrap()
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, -7), Rat64::ZERO);
        assert_eq!(r(0, 5).denom(), 1);
    }

    #[test]
    fn overflow_panic_predicate_matches_operator_panics() {
        let payload = std::panic::catch_unwind(|| {
            let big = r(i64::MAX, 1);
            let _ = big * big;
        })
        .unwrap_err();
        assert!(Rat64::is_overflow_panic(payload.as_ref()));
        let other = std::panic::catch_unwind(|| panic!("something else")).unwrap_err();
        assert!(!Rat64::is_overflow_panic(other.as_ref()));
    }

    #[test]
    fn zero_denominator_rejected() {
        assert_eq!(Rat64::new(1, 0), Err(ModelError::ZeroDenominator));
    }

    #[test]
    fn basic_arithmetic() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(-r(1, 2), r(-1, 2));
    }

    #[test]
    fn ordering_is_exact() {
        assert!(r(1, 3) < r(34, 100));
        assert!(r(1, 3) > r(33, 100));
        assert_eq!(r(69, 25).cmp(&r(276, 100)), Ordering::Equal);
    }

    #[test]
    fn floor_and_ceil() {
        assert_eq!(r(7, 2).floor(), 3);
        assert_eq!(r(7, 2).ceil(), 4);
        assert_eq!(r(-7, 2).floor(), -4);
        assert_eq!(r(-7, 2).ceil(), -3);
        assert_eq!(r(6, 2).floor(), 3);
        assert_eq!(r(6, 2).ceil(), 3);
        assert_eq!(r(-1, 5).floor(), -1);
        assert_eq!(Rat64::ZERO.floor(), 0);
    }

    #[test]
    fn recip_and_abs() {
        assert_eq!(r(-3, 4).recip(), r(-4, 3));
        assert_eq!(r(-3, 4).abs(), r(3, 4));
    }

    #[test]
    #[should_panic(expected = "recip of zero")]
    fn recip_zero_panics() {
        let _ = Rat64::ZERO.recip();
    }

    #[test]
    fn overflow_is_detected() {
        let big = Rat64::from_int(i64::MAX);
        assert!(big.checked_mul(big).is_none());
        assert!(big.checked_add(Rat64::ONE).is_none());
        // But i128 intermediates rescue reducible cases.
        let half_of_big = r(i64::MAX, 2);
        assert_eq!(half_of_big.checked_mul(r(2, i64::MAX)), Some(Rat64::ONE));
    }

    #[test]
    #[should_panic(expected = "Rat64 overflow")]
    fn overflowing_operator_panics() {
        let big = Rat64::from_int(i64::MAX);
        let _ = big * big;
    }

    #[test]
    fn display_forms() {
        assert_eq!(r(4, 2).to_string(), "2");
        assert_eq!(r(-1, 3).to_string(), "-1/3");
        assert_eq!(format!("{:?}", r(1, 3)), "Rat64(1/3)");
    }

    #[test]
    fn time_trait_instance() {
        assert_eq!(<Rat64 as Time>::ratio(126, 100), r(63, 50));
        assert_eq!(r(-1, 5).floor_i64(), -1);
        assert_eq!(r(63, 50).to_f64(), 1.26);
        assert_eq!(Rat64::from_u32(7), r(7, 1));
        assert!(r(1, 3).is_valid());
        assert_eq!(r(1, 3).max_zero(), r(1, 3));
        assert_eq!(r(-1, 3).max_zero(), Rat64::ZERO);
    }

    #[test]
    fn approx_f64_finds_small_denominators() {
        assert_eq!(Rat64::approx_f64(1.26, 1000).unwrap(), r(63, 50));
        assert_eq!(Rat64::approx_f64(0.95, 1000).unwrap(), r(19, 20));
        assert_eq!(Rat64::approx_f64(-0.25, 1000).unwrap(), r(-1, 4));
        assert_eq!(Rat64::approx_f64(3.0, 10).unwrap(), r(3, 1));
        assert_eq!(Rat64::approx_f64(0.0, 10).unwrap(), Rat64::ZERO);
        // 1/3 is not representable in binary; the approximation recovers it.
        assert_eq!(Rat64::approx_f64(1.0 / 3.0, 100).unwrap(), r(1, 3));
    }

    #[test]
    fn approx_f64_rejects_non_finite() {
        assert!(Rat64::approx_f64(f64::NAN, 10).is_err());
        assert!(Rat64::approx_f64(f64::INFINITY, 10).is_err());
    }

    #[test]
    fn serde_round_trip_and_validation() {
        let v = r(-63, 50);
        let json = serde_json::to_string(&v).unwrap();
        assert_eq!(serde_json::from_str::<Rat64>(&json).unwrap(), v);
        // Non-normalized wire form is normalized on ingest.
        let v: Rat64 = serde_json::from_str(r#"{"num":2,"den":-4}"#).unwrap();
        assert_eq!(v, r(-1, 2));
        // Zero denominator is rejected.
        assert!(serde_json::from_str::<Rat64>(r#"{"num":1,"den":0}"#).is_err());
    }
}
