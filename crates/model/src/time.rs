//! The [`Time`] numeric abstraction.
//!
//! Every schedulability test in the companion `fpga-rt-analysis` crate is a
//! chain of `+ − × ÷`, comparisons and a handful of floors over task timing
//! parameters. Making the tests generic over a small numeric trait buys two
//! things:
//!
//! 1. **Speed** for Monte-Carlo sweeps (`f64`).
//! 2. **Exactness** for knife-edge verdicts ([`crate::Rat64`]): the paper's
//!    Table 1 GN2 verdict is decided by a comparison that holds with *exact
//!    equality* (`69/25` on both sides); `f64` can only observe that the
//!    rounded sides coincide, not prove the equality.
//!
//! The trait is sealed against misuse only by convention; implementing it for
//! your own type is supported (e.g. a fixed-point microsecond type), as long
//! as the documented laws hold.

use core::fmt::{Debug, Display};
use core::ops::{Add, Div, Mul, Neg, Sub};

/// Numeric values used for execution times, deadlines and periods.
///
/// # Laws
///
/// Implementations must form an ordered field on the values actually used
/// (validated positive task parameters and quantities derived from them):
///
/// * `ZERO` and `ONE` are additive and multiplicative identities.
/// * `PartialOrd` is a total order on all values produced by the model
///   (the `f64` instance never produces NaN from validated inputs).
/// * [`Time::floor_i64`] returns the largest integer ≤ the value.
/// * [`Time::ratio`] returns exactly `num/den` when the type can represent
///   it, and the nearest representable value otherwise.
pub trait Time:
    Copy
    + Clone
    + PartialOrd
    + PartialEq
    + Debug
    + Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Exact conversion from a small unsigned integer (areas, column counts).
    fn from_u32(v: u32) -> Self;

    /// Exact conversion from a signed integer.
    fn from_i64(v: i64) -> Self;

    /// Largest integer less than or equal to `self`.
    ///
    /// Used for the `Ni = ⌊(Dk − Di)/Ti⌋ + 1` job-count computation of the
    /// GN1 test, which may legitimately be negative before the `+ 1`.
    fn floor_i64(self) -> i64;

    /// Lossy conversion to `f64` for reporting and plotting.
    fn to_f64(self) -> f64;

    /// The value `num/den`. `den` must be non-zero.
    fn ratio(num: i64, den: i64) -> Self;

    /// `true` when the value is finite and well-formed (always true for
    /// exact types; excludes NaN/∞ for floating point).
    fn is_valid(self) -> bool;

    /// The smaller of two values.
    #[inline]
    fn min_t(self, other: Self) -> Self {
        if other < self {
            other
        } else {
            self
        }
    }

    /// The larger of two values.
    #[inline]
    fn max_t(self, other: Self) -> Self {
        if other > self {
            other
        } else {
            self
        }
    }

    /// Clamp below at zero: `max(self, 0)`.
    #[inline]
    fn max_zero(self) -> Self {
        self.max_t(Self::ZERO)
    }

    /// `true` when strictly positive.
    ///
    /// Named with a `_t` suffix to avoid shadowing by inherent methods on
    /// primitive numeric types.
    #[inline]
    fn is_positive_t(self) -> bool {
        self > Self::ZERO
    }
}

impl Time for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;

    #[inline]
    fn from_u32(v: u32) -> Self {
        f64::from(v)
    }

    #[inline]
    fn from_i64(v: i64) -> Self {
        v as f64
    }

    #[inline]
    fn floor_i64(self) -> i64 {
        self.floor() as i64
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline]
    fn ratio(num: i64, den: i64) -> Self {
        assert!(den != 0, "Time::ratio with zero denominator");
        num as f64 / den as f64
    }

    #[inline]
    fn is_valid(self) -> bool {
        self.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_identities() {
        assert_eq!(<f64 as Time>::ZERO + 1.5, 1.5);
        assert_eq!(<f64 as Time>::ONE * 2.5, 2.5);
    }

    #[test]
    fn f64_floor_handles_negatives() {
        assert_eq!((-0.2f64).floor_i64(), -1);
        assert_eq!((0.0f64).floor_i64(), 0);
        assert_eq!((2.999f64).floor_i64(), 2);
        assert_eq!((3.0f64).floor_i64(), 3);
        assert_eq!((-3.0f64).floor_i64(), -3);
    }

    #[test]
    fn f64_ratio() {
        assert_eq!(f64::ratio(126, 100), 1.26);
        assert_eq!(f64::ratio(-1, 4), -0.25);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn f64_ratio_zero_den_panics() {
        let _ = f64::ratio(1, 0);
    }

    #[test]
    fn min_max_helpers() {
        assert_eq!(1.0f64.min_t(2.0), 1.0);
        assert_eq!(1.0f64.max_t(2.0), 2.0);
        assert_eq!((-1.0f64).max_zero(), 0.0);
        assert_eq!(1.0f64.max_zero(), 1.0);
        assert!(Time::is_positive_t(0.5f64));
        assert!(!Time::is_positive_t(0.0f64));
    }

    #[test]
    fn f64_validity() {
        assert!(1.0f64.is_valid());
        assert!(!f64::NAN.is_valid());
        assert!(!f64::INFINITY.is_valid());
    }
}
