//! Tasksets Γ and their aggregate metrics.

use crate::device::Fpga;
use crate::error::ModelError;
use crate::task::{Task, TaskId};
use crate::time::Time;
use serde::{Deserialize, Serialize};

/// A non-empty, immutable collection of tasks.
///
/// Aggregate quantities used throughout the paper:
///
/// * `UT(Γ) = Σ Ci/Ti` — [`TaskSet::time_utilization`]
/// * `US(Γ) = Σ Ci·Ai/Ti` — [`TaskSet::system_utilization`]
/// * `Amax`, `Amin` — largest/smallest task area.
///
/// The collection is validated on construction (non-empty, every task
/// individually valid by [`Task`]'s own constructor).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "Vec<Task<T>>", into = "Vec<Task<T>>")]
#[serde(bound(
    serialize = "T: Time + Serialize + Clone",
    deserialize = "T: Time + Deserialize<'de>"
))]
pub struct TaskSet<T: Time> {
    tasks: Vec<Task<T>>,
}

impl<T: Time> TryFrom<Vec<Task<T>>> for TaskSet<T> {
    type Error = ModelError;
    fn try_from(tasks: Vec<Task<T>>) -> Result<Self, ModelError> {
        TaskSet::new(tasks)
    }
}

impl<T: Time> From<TaskSet<T>> for Vec<Task<T>> {
    fn from(ts: TaskSet<T>) -> Self {
        ts.tasks
    }
}

impl<T: Time> TaskSet<T> {
    /// Build a taskset from already-validated tasks. Rejects empty input.
    pub fn new(tasks: Vec<Task<T>>) -> Result<Self, ModelError> {
        if tasks.is_empty() {
            return Err(ModelError::EmptyTaskSet);
        }
        Ok(TaskSet { tasks })
    }

    /// Convenience constructor from `(C, D, T, A)` tuples.
    ///
    /// ```
    /// use fpga_rt_model::TaskSet;
    /// let ts: TaskSet<f64> =
    ///     TaskSet::try_from_tuples(&[(1.26, 7.0, 7.0, 9), (0.95, 5.0, 5.0, 6)]).unwrap();
    /// assert_eq!(ts.len(), 2);
    /// ```
    pub fn try_from_tuples(tuples: &[(T, T, T, u32)]) -> Result<Self, ModelError> {
        let tasks = tuples
            .iter()
            .enumerate()
            .map(|(i, &(c, d, t, a))| {
                Task::new(c, d, t, a)
                    .map_err(|e| ModelError::InvalidTask { task: i, source: Box::new(e) })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Self::new(tasks)
    }

    /// Number of tasks `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Always `false`: construction rejects empty tasksets. Provided for
    /// API-guideline symmetry with [`TaskSet::len`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The task with index `k`.
    ///
    /// # Panics
    /// Panics when `k` is out of range; use [`TaskSet::get`] for the checked
    /// variant.
    #[inline]
    pub fn task(&self, k: usize) -> &Task<T> {
        &self.tasks[k]
    }

    /// Checked task lookup.
    #[inline]
    pub fn get(&self, k: usize) -> Option<&Task<T>> {
        self.tasks.get(k)
    }

    /// Iterate over `(TaskId, &Task)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &Task<T>)> + '_ {
        self.tasks.iter().enumerate().map(|(i, t)| (TaskId(i), t))
    }

    /// The underlying slice of tasks.
    #[inline]
    pub fn tasks(&self) -> &[Task<T>] {
        &self.tasks
    }

    /// Total time utilization `UT(Γ) = Σ Ci/Ti`.
    pub fn time_utilization(&self) -> T {
        self.tasks.iter().fold(T::ZERO, |acc, t| acc + t.time_utilization())
    }

    /// Total system utilization `US(Γ) = Σ Ci·Ai/Ti`.
    pub fn system_utilization(&self) -> T {
        self.tasks.iter().fold(T::ZERO, |acc, t| acc + t.system_utilization())
    }

    /// Normalized system utilization `US(Γ)/A(H)` in `[0, ∞)`; the x-axis of
    /// the paper's Figures 3 and 4.
    pub fn normalized_system_utilization(&self, device: &Fpga) -> T {
        self.system_utilization() / T::from_u32(device.columns())
    }

    /// Largest task area `Amax`.
    pub fn amax(&self) -> u32 {
        self.tasks.iter().map(Task::area).max().unwrap_or(0)
    }

    /// Smallest task area `Amin`.
    pub fn amin(&self) -> u32 {
        self.tasks.iter().map(Task::area).min().unwrap_or(0)
    }

    /// Largest period in the set (used to pick simulation horizons).
    pub fn tmax(&self) -> T {
        self.tasks.iter().map(Task::period).fold(T::ZERO, |a, b| a.max_t(b))
    }

    /// `true` when every task fits the device (`Ak ≤ A(H)`).
    pub fn fits_device(&self, device: &Fpga) -> bool {
        self.tasks.iter().all(|t| t.area() <= device.columns())
    }

    /// Validate the taskset against a device, reporting the first offending
    /// task, plus trivial per-task feasibility (`Ck ≤ Dk`).
    pub fn validate_for(&self, device: &Fpga) -> Result<(), ModelError> {
        for (i, t) in self.tasks.iter().enumerate() {
            if t.area() > device.columns() {
                return Err(ModelError::TaskWiderThanDevice {
                    task: i,
                    area: t.area(),
                    device: device.columns(),
                });
            }
        }
        Ok(())
    }

    /// `true` when some task has `Ck > Dk` and the set is unschedulable on
    /// any device.
    pub fn has_trivially_infeasible_task(&self) -> bool {
        self.tasks.iter().any(Task::is_trivially_infeasible)
    }

    /// `true` when every task has `Dk = Tk` (the paper's evaluation shape).
    pub fn all_implicit_deadline(&self) -> bool {
        self.tasks.iter().all(Task::is_implicit_deadline)
    }

    /// Convert the timing representation (e.g. `f64` → `Rat64`) through `f`.
    pub fn map_time<U: Time>(&self, mut f: impl FnMut(T) -> U) -> Result<TaskSet<U>, ModelError> {
        let tasks = self
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| {
                t.map_time(&mut f)
                    .map_err(|e| ModelError::InvalidTask { task: i, source: Box::new(e) })
            })
            .collect::<Result<Vec<_>, _>>()?;
        TaskSet::new(tasks)
    }

    /// Return a copy with every task's execution time inflated by
    /// `overhead` (reconfiguration-overhead accounting).
    pub fn with_exec_inflated(&self, overhead: T) -> Result<Self, ModelError> {
        let tasks = self
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| {
                t.with_exec_inflated(overhead)
                    .map_err(|e| ModelError::InvalidTask { task: i, source: Box::new(e) })
            })
            .collect::<Result<Vec<_>, _>>()?;
        TaskSet::new(tasks)
    }
}

impl<'a, T: Time> IntoIterator for &'a TaskSet<T> {
    type Item = &'a Task<T>;
    type IntoIter = core::slice::Iter<'a, Task<T>>;
    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::Rat64;

    fn table1() -> TaskSet<f64> {
        TaskSet::try_from_tuples(&[(1.26, 7.0, 7.0, 9), (0.95, 5.0, 5.0, 6)]).unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(TaskSet::<f64>::new(vec![]), Err(ModelError::EmptyTaskSet));
    }

    #[test]
    fn tuple_errors_carry_the_offending_index_and_value() {
        let err = TaskSet::try_from_tuples(&[(1.0, 5.0, 5.0, 2), (-3.5, 5.0, 5.0, 2)]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("#1"), "index in: {msg}");
        assert!(msg.contains("-3.5"), "value in: {msg}");
        assert!(matches!(err, ModelError::InvalidTask { task: 1, .. }));
        // Zero-area entry at index 0.
        let err = TaskSet::<f64>::try_from_tuples(&[(1.0, 5.0, 5.0, 0)]).unwrap_err();
        assert!(matches!(err, ModelError::InvalidTask { task: 0, .. }));
        assert!(err.to_string().contains("#0"));
    }

    #[test]
    fn aggregates_match_paper_table1() {
        let ts = table1();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.amax(), 9);
        assert_eq!(ts.amin(), 6);
        // US(Γ) = 1.26·9/7 + 0.95·6/5 = 1.62 + 1.14 = 2.76
        assert!((ts.system_utilization() - 2.76).abs() < 1e-12);
        assert!((ts.time_utilization() - 0.37).abs() < 1e-12);
        assert_eq!(ts.tmax(), 7.0);
        assert!(ts.all_implicit_deadline());
    }

    #[test]
    fn device_validation() {
        let ts = table1();
        assert!(ts.fits_device(&Fpga::new(10).unwrap()));
        assert!(!ts.fits_device(&Fpga::new(8).unwrap()));
        let err = ts.validate_for(&Fpga::new(8).unwrap()).unwrap_err();
        assert_eq!(err, ModelError::TaskWiderThanDevice { task: 0, area: 9, device: 8 });
    }

    #[test]
    fn normalized_utilization() {
        let ts = table1();
        let dev = Fpga::new(10).unwrap();
        assert!((ts.normalized_system_utilization(&dev) - 0.276).abs() < 1e-12);
    }

    #[test]
    fn exact_aggregates() {
        let ts: TaskSet<Rat64> = TaskSet::try_from_tuples(&[
            (Rat64::new(63, 50).unwrap(), Rat64::from_int(7), Rat64::from_int(7), 9),
            (Rat64::new(19, 20).unwrap(), Rat64::from_int(5), Rat64::from_int(5), 6),
        ])
        .unwrap();
        assert_eq!(ts.system_utilization(), Rat64::new(69, 25).unwrap());
        assert_eq!(ts.time_utilization(), Rat64::new(37, 100).unwrap());
    }

    #[test]
    fn iteration_yields_ids_in_order() {
        let ts = table1();
        let ids: Vec<usize> = ts.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!((&ts).into_iter().count(), 2);
    }

    #[test]
    fn trivially_infeasible_detection() {
        let ts = TaskSet::try_from_tuples(&[(3.0, 2.0, 5.0, 1)]).unwrap();
        assert!(ts.has_trivially_infeasible_task());
        assert!(!table1().has_trivially_infeasible_task());
    }

    #[test]
    fn exec_inflation_applies_to_all() {
        let ts = table1().with_exec_inflated(0.1).unwrap();
        assert!((ts.task(0).exec() - 1.36).abs() < 1e-12);
        assert!((ts.task(1).exec() - 1.05).abs() < 1e-12);
    }

    #[test]
    fn map_time_round_trip() {
        let ts = table1();
        let exact = ts.map_time(|v| Rat64::approx_f64(v, 10_000).unwrap()).unwrap();
        assert_eq!(exact.system_utilization(), Rat64::new(69, 25).unwrap());
        let back = exact.map_time(|v| v.to_f64()).unwrap();
        assert_eq!(back, ts);
    }

    #[test]
    fn serde_round_trip() {
        let ts = table1();
        let json = serde_json::to_string(&ts).unwrap();
        let back: TaskSet<f64> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ts);
        // Empty wire arrays are rejected.
        assert!(serde_json::from_str::<TaskSet<f64>>("[]").is_err());
    }
}
