//! The sporadic/periodic hardware task τk = (Ck, Dk, Tk, Ak).

use crate::error::ModelError;
use crate::time::Time;
use serde::{Deserialize, Serialize};

/// Index of a task within its [`crate::TaskSet`].
///
/// Task identity is positional: the analyses and the simulator both refer to
/// "task k" by its index in the owning taskset, matching the paper's
/// `τk, k ∈ 1..N` convention (zero-based here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub usize);

impl core::fmt::Display for TaskId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

/// A periodic or sporadic hardware task.
///
/// * `exec` — worst-case execution time `Ck` (> 0),
/// * `deadline` — relative deadline `Dk` (> 0, may be less than, equal to or
///   greater than the period),
/// * `period` — period / minimum inter-arrival time `Tk` (> 0),
/// * `area` — number of contiguous FPGA columns `Ak` occupied while a job of
///   the task executes (≥ 1; integer per the paper's Lemma 1 argument).
///
/// Construct via [`Task::new`], which validates every field, so downstream
/// code never re-checks. Use [`Task::implicit`] for the common `D = T` case
/// used throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Task<T> {
    exec: T,
    deadline: T,
    period: T,
    area: u32,
}

impl<T: Time> Task<T> {
    /// Create a task, validating all parameters.
    pub fn new(exec: T, deadline: T, period: T, area: u32) -> Result<Self, ModelError> {
        fn check<T: Time>(v: T, field: &'static str) -> Result<(), ModelError> {
            if !v.is_valid() || v <= T::ZERO {
                return Err(ModelError::NonPositiveTime { field, value: format!("{v}") });
            }
            Ok(())
        }
        check(exec, "exec")?;
        check(deadline, "deadline")?;
        check(period, "period")?;
        if area == 0 {
            return Err(ModelError::ZeroArea);
        }
        Ok(Task { exec, deadline, period, area })
    }

    /// Create an implicit-deadline task (`D = T`), the shape of every task in
    /// the paper's evaluation section.
    pub fn implicit(exec: T, period: T, area: u32) -> Result<Self, ModelError> {
        Self::new(exec, period, period, area)
    }

    /// Worst-case execution time `Ck`.
    #[inline]
    pub fn exec(&self) -> T {
        self.exec
    }

    /// Relative deadline `Dk`.
    #[inline]
    pub fn deadline(&self) -> T {
        self.deadline
    }

    /// Period / minimum inter-arrival time `Tk`.
    #[inline]
    pub fn period(&self) -> T {
        self.period
    }

    /// Area `Ak` in columns.
    #[inline]
    pub fn area(&self) -> u32 {
        self.area
    }

    /// Area as a [`Time`] value, for use inside analytic expressions.
    #[inline]
    pub fn area_t(&self) -> T {
        T::from_u32(self.area)
    }

    /// Time utilization `Ck / Tk`.
    #[inline]
    pub fn time_utilization(&self) -> T {
        self.exec / self.period
    }

    /// System utilization `Ck · Ak / Tk` (the paper's `US(τk)`): the average
    /// fraction of *area-time* the task demands.
    #[inline]
    pub fn system_utilization(&self) -> T {
        self.exec * self.area_t() / self.period
    }

    /// Density `Ck / Dk` — the per-deadline demand used by GN1.
    #[inline]
    pub fn density(&self) -> T {
        self.exec / self.deadline
    }

    /// `true` when `Dk = Tk` (implicit deadline).
    #[inline]
    pub fn is_implicit_deadline(&self) -> bool {
        self.deadline == self.period
    }

    /// `true` when `Dk ≤ Tk` (constrained deadline).
    #[inline]
    pub fn is_constrained_deadline(&self) -> bool {
        self.deadline <= self.period
    }

    /// A task with `Ck > Dk` can never meet a deadline even when running
    /// alone; every sensible test rejects such tasksets up front.
    #[inline]
    pub fn is_trivially_infeasible(&self) -> bool {
        self.exec > self.deadline
    }

    /// Return a copy with the execution time inflated by `overhead`
    /// (the paper's Section 1 recipe for accounting for reconfiguration
    /// overhead: "it is easy to take into account the overhead by adding it
    /// to the execution time").
    pub fn with_exec_inflated(&self, overhead: T) -> Result<Self, ModelError> {
        Self::new(self.exec + overhead, self.deadline, self.period, self.area)
    }

    /// Map the timing fields through `f`, preserving the area; used to
    /// convert a taskset between numeric representations (e.g. `f64` →
    /// [`crate::Rat64`]).
    pub fn map_time<U: Time>(&self, mut f: impl FnMut(T) -> U) -> Result<Task<U>, ModelError> {
        Task::new(f(self.exec), f(self.deadline), f(self.period), self.area)
    }

    /// Canonical total order over tasks: lexicographic on
    /// `(Ck, Dk, Tk, Ak)`.
    ///
    /// Validated timing fields are positive and finite ([`Task::new`]
    /// rejects NaN and non-positive values), so `partial_cmp` is total here
    /// and this never panics. [`crate::LiveTaskSet`] keeps its tasks sorted
    /// by this order, which makes every derived quantity — snapshots,
    /// aggregate folds, analysis verdicts — a pure function of the task
    /// *multiset* rather than of the admission history. Tasks that compare
    /// `Equal` are indistinguishable field-for-field, so any tie order
    /// yields identical downstream results.
    pub fn canonical_cmp(&self, other: &Self) -> core::cmp::Ordering {
        let ord = |a: T, b: T| a.partial_cmp(&b).expect("validated times are ordered");
        ord(self.exec, other.exec)
            .then_with(|| ord(self.deadline, other.deadline))
            .then_with(|| ord(self.period, other.period))
            .then_with(|| self.area.cmp(&other.area))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::Rat64;

    #[test]
    fn construction_validates() {
        assert!(Task::new(1.0, 2.0, 2.0, 1).is_ok());
        assert!(matches!(
            Task::new(0.0, 2.0, 2.0, 1),
            Err(ModelError::NonPositiveTime { field: "exec", .. })
        ));
        assert!(matches!(
            Task::new(1.0, -2.0, 2.0, 1),
            Err(ModelError::NonPositiveTime { field: "deadline", .. })
        ));
        assert!(matches!(
            Task::new(1.0, 2.0, f64::NAN, 1),
            Err(ModelError::NonPositiveTime { field: "period", .. })
        ));
        assert!(matches!(Task::new(1.0, 2.0, 2.0, 0), Err(ModelError::ZeroArea)));
    }

    #[test]
    fn utilizations() {
        let t = Task::new(2.0, 4.0, 8.0, 5).unwrap();
        assert_eq!(t.time_utilization(), 0.25);
        assert_eq!(t.system_utilization(), 1.25);
        assert_eq!(t.density(), 0.5);
        assert!(t.is_constrained_deadline());
        assert!(!t.is_implicit_deadline());
    }

    #[test]
    fn implicit_constructor() {
        let t = Task::implicit(1.0, 5.0, 2).unwrap();
        assert!(t.is_implicit_deadline());
        assert_eq!(t.deadline(), 5.0);
    }

    #[test]
    fn trivial_infeasibility() {
        let t = Task::new(3.0, 2.0, 5.0, 1).unwrap();
        assert!(t.is_trivially_infeasible());
    }

    #[test]
    fn exec_inflation() {
        let t = Task::implicit(1.0, 5.0, 2).unwrap();
        let t2 = t.with_exec_inflated(0.5).unwrap();
        assert_eq!(t2.exec(), 1.5);
        assert_eq!(t2.period(), 5.0);
    }

    #[test]
    fn map_time_to_rational() {
        let t = Task::implicit(1.26, 7.0, 9).unwrap();
        let r = t.map_time(|v| Rat64::approx_f64(v, 10_000).unwrap()).unwrap();
        assert_eq!(r.exec(), Rat64::new(63, 50).unwrap());
        assert_eq!(r.area(), 9);
    }

    #[test]
    fn exact_task_utilization() {
        let t = Task::implicit(Rat64::new(19, 20).unwrap(), Rat64::from_int(5), 6).unwrap();
        assert_eq!(t.time_utilization(), Rat64::new(19, 100).unwrap());
        assert_eq!(t.system_utilization(), Rat64::new(57, 50).unwrap());
    }

    #[test]
    fn task_id_display() {
        assert_eq!(TaskId(3).to_string(), "τ3");
    }

    #[test]
    fn serde_round_trip() {
        let t = Task::implicit(1.26, 7.0, 9).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: Task<f64> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn canonical_cmp_is_lexicographic() {
        use core::cmp::Ordering;
        let base = Task::new(1.0, 4.0, 5.0, 3).unwrap();
        assert_eq!(base.canonical_cmp(&base), Ordering::Equal);
        // exec dominates.
        assert_eq!(base.canonical_cmp(&Task::new(2.0, 1.0, 1.0, 1).unwrap()), Ordering::Less);
        // deadline breaks exec ties.
        assert_eq!(base.canonical_cmp(&Task::new(1.0, 3.0, 9.0, 9).unwrap()), Ordering::Greater);
        // period breaks (exec, deadline) ties.
        assert_eq!(base.canonical_cmp(&Task::new(1.0, 4.0, 6.0, 1).unwrap()), Ordering::Less);
        // area breaks full timing ties.
        assert_eq!(base.canonical_cmp(&Task::new(1.0, 4.0, 5.0, 4).unwrap()), Ordering::Less);
    }
}
