//! # fpga-rt-model
//!
//! Task model, device model and numeric foundations for real-time scheduling
//! of hardware tasks on 1-D partially runtime-reconfigurable (PRTR) FPGAs,
//! following the terminology of
//! *Guan, Gu, Deng, Liu, Yu — "Improved Schedulability Analysis of EDF
//! Scheduling on Reconfigurable Hardware Devices", IPDPS 2007* (Section 2).
//!
//! The model is deliberately small and strict:
//!
//! * A **task** τk = (Ck, Dk, Tk, Ak) has execution time `Ck`, relative
//!   deadline `Dk`, period (or minimum inter-arrival time) `Tk`, and an
//!   **integer** area `Ak` — the number of contiguous FPGA columns the task
//!   occupies while executing. Integer areas are load-bearing: Lemma 1 of the
//!   paper sharpens the Danne–Platzner bound from `A(H) − Amax` to
//!   `A(H) − Amax + 1` precisely because areas are whole columns.
//! * A **device** is a 1-D reconfigurable fabric with `A(H)` columns; an
//!   identical multiprocessor is the special case where every task has
//!   `Ak = 1` and `A(H) = m`.
//! * All timing quantities are generic over the [`Time`] trait, with two
//!   shipped instances: `f64` for large Monte-Carlo sweeps and [`Rat64`] for
//!   exact arithmetic. Exactness matters: the paper's Table 1 verdict under
//!   the GN2 test hinges on an *exact equality* between two rationals
//!   (`69/25` on both sides). Only exact arithmetic can *prove* the
//!   equality — in `f64` the sides merely happen to collide on the same
//!   double for the shipped evaluation order, with no guarantee under
//!   refactoring.
//!
//! ## Quick example
//!
//! ```
//! use fpga_rt_model::{Fpga, Task, TaskSet};
//!
//! // Table 3 of the paper, on a 10-column device.
//! let ts: TaskSet<f64> = TaskSet::try_from_tuples(&[
//!     (2.10, 5.0, 5.0, 7),
//!     (2.00, 7.0, 7.0, 7),
//! ]).unwrap();
//! let fpga = Fpga::new(10).unwrap();
//! assert_eq!(ts.amax(), 7);
//! assert!((ts.system_utilization() - 4.94).abs() < 1e-9);
//! assert!(ts.fits_device(&fpga));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod error;
pub mod live;
pub mod rational;
pub mod task;
pub mod taskset;
pub mod time;

pub use device::Fpga;
pub use error::ModelError;
pub use live::{LiveTaskSet, TaskHandle};
pub use rational::Rat64;
pub use task::{Task, TaskId};
pub use taskset::TaskSet;
pub use time::Time;

/// Crate-wide result alias.
pub type Result<T, E = ModelError> = core::result::Result<T, E>;
