//! Mutable tasksets for online admission control.
//!
//! [`crate::TaskSet`] is deliberately immutable: every offline analysis in
//! this workspace consumes a frozen snapshot. An *admission controller*,
//! however, needs a taskset that changes over time — hardware tasks arrive,
//! get admitted, run for a while and are released — and it needs the
//! aggregate quantities the schedulability bounds are built from
//! (`UT(Γ)`, `US(Γ)`, `Amax`) to be maintained **incrementally** so each
//! admission decision does not start with an O(N) re-summation.
//!
//! [`LiveTaskSet`] provides exactly that: an insert/remove taskset with
//! stable [`TaskHandle`] identities and incrementally-maintained
//! aggregates.
//!
//! ## Canonical order
//!
//! The tasks are stored sorted by [`Task::canonical_cmp`] — lexicographic
//! on `(Ck, Dk, Tk, Ak)` — **not** in admission order. Both admission and
//! removal re-fold the utilization sums over that canonical order, so every
//! observable of a live set (snapshots, aggregate folds and therefore every
//! floating-point analysis verdict derived from them) is a pure function of
//! the current task *multiset*: two histories that arrive at the same
//! multiset of tasks produce bit-identical snapshots and aggregates. This
//! purity is what lets a fingerprint-keyed verdict cache replay decisions
//! across sessions without ever observing a divergent bit. Mutations are
//! O(N) (`O(log A)` for the area multiset); the admission tests they feed
//! are Ω(N) anyway.

use crate::error::ModelError;
use crate::task::Task;
use crate::taskset::TaskSet;
use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Stable identity of a task admitted into a [`LiveTaskSet`].
///
/// Unlike [`crate::TaskId`] (positional within an immutable
/// [`crate::TaskSet`]), handles survive removals of other tasks: they are
/// assigned once per admission and never reused within a live set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskHandle(pub u64);

impl core::fmt::Display for TaskHandle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// A mutable collection of tasks with incrementally-maintained aggregates.
///
/// Unlike [`crate::TaskSet`], a live set may be empty (an admission
/// controller starts with no tasks). Snapshots for the offline analyses are
/// produced by [`LiveTaskSet::snapshot`] / [`LiveTaskSet::snapshot_with`].
#[derive(Debug, Clone)]
pub struct LiveTaskSet<T: Time> {
    /// `(handle, task)` pairs in canonical [`Task::canonical_cmp`] order.
    tasks: Vec<(TaskHandle, Task<T>)>,
    next_handle: u64,
    ut_total: T,
    us_total: T,
    /// `tasks[i].1.time_utilization()` memoized in the same order, so the
    /// per-mutation re-folds are pure adds instead of a division per
    /// element.
    ut_values: Vec<T>,
    /// `tasks[i].1.system_utilization()` memoized in the same order, for
    /// the same re-folds plus the union fold
    /// ([`LiveTaskSet::system_utilization_with`]).
    us_values: Vec<T>,
    /// Multiset of task areas (`area → count`), for O(log A) `Amax`/`Amin`.
    areas: BTreeMap<u32, usize>,
}

impl<T: Time> Default for LiveTaskSet<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Time> LiveTaskSet<T> {
    /// An empty live set.
    pub fn new() -> Self {
        LiveTaskSet {
            tasks: Vec::new(),
            next_handle: 0,
            ut_total: T::ZERO,
            us_total: T::ZERO,
            ut_values: Vec::new(),
            us_values: Vec::new(),
            areas: BTreeMap::new(),
        }
    }

    /// Number of currently-admitted tasks.
    #[inline]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when no task is admitted.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The canonical position a task occupies (or would occupy) in this
    /// set: after every stored task that compares ≤ to it under
    /// [`Task::canonical_cmp`] (insert-after-equals). Both [`admit`] and
    /// [`snapshot_with`] place tasks at exactly this index, so positional
    /// diagnostics computed on a candidate snapshot remain valid after the
    /// candidate is committed.
    ///
    /// [`admit`]: LiveTaskSet::admit
    /// [`snapshot_with`]: LiveTaskSet::snapshot_with
    pub fn canonical_position(&self, task: &Task<T>) -> usize {
        self.tasks.partition_point(|(_, t)| t.canonical_cmp(task) != core::cmp::Ordering::Greater)
    }

    /// Admit a (pre-validated) task at its canonical position, returning
    /// its stable handle.
    ///
    /// O(N): inserts in [`Task::canonical_cmp`] order and re-folds the
    /// utilization sums over that order, so the aggregates stay a pure
    /// function of the task multiset. Schedulability is *not* checked here
    /// — that is the admission controller's job.
    pub fn admit(&mut self, task: Task<T>) -> TaskHandle {
        let handle = TaskHandle(self.next_handle);
        self.next_handle += 1;
        *self.areas.entry(task.area()).or_insert(0) += 1;
        let pos = self.canonical_position(&task);
        self.tasks.insert(pos, (handle, task));
        self.ut_values.insert(pos, task.time_utilization());
        self.us_values.insert(pos, task.system_utilization());
        self.refold_totals();
        handle
    }

    /// Release the task with the given handle, returning it.
    ///
    /// O(N): preserves canonical order and re-folds the utilization sums so
    /// the floating-point aggregates match a from-scratch recomputation.
    pub fn remove(&mut self, handle: TaskHandle) -> Result<Task<T>, ModelError> {
        let idx = self
            .tasks
            .iter()
            .position(|(h, _)| *h == handle)
            .ok_or(ModelError::UnknownTaskHandle { handle: handle.0 })?;
        let (_, task) = self.tasks.remove(idx);
        self.ut_values.remove(idx);
        self.us_values.remove(idx);
        match self.areas.get_mut(&task.area()) {
            Some(count) if *count > 1 => *count -= 1,
            _ => {
                self.areas.remove(&task.area());
            }
        }
        self.refold_totals();
        Ok(task)
    }

    /// Look up a task by handle.
    pub fn get(&self, handle: TaskHandle) -> Option<&Task<T>> {
        self.tasks.iter().find(|(h, _)| *h == handle).map(|(_, t)| t)
    }

    /// Iterate over `(handle, &task)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskHandle, &Task<T>)> + '_ {
        self.tasks.iter().map(|(h, t)| (*h, t))
    }

    /// Total time utilization `UT(Γ)`, maintained incrementally.
    #[inline]
    pub fn time_utilization(&self) -> T {
        self.ut_total
    }

    /// Total system utilization `US(Γ)`, maintained incrementally.
    #[inline]
    pub fn system_utilization(&self) -> T {
        self.us_total
    }

    /// Total system utilization `US(Γ ∪ {candidate})`, folded in canonical
    /// order with the candidate spliced at its canonical position.
    ///
    /// Bit-identical to what [`LiveTaskSet::system_utilization`] returns
    /// after `admit(candidate)` — and therefore a pure function of the
    /// union multiset, no matter which member plays "candidate". Appending
    /// the candidate's utilization last (`US(Γ) + US(τ)`) would round
    /// differently for different (live, candidate) splits of the same
    /// union, which is exactly the drift a verdict cache keyed on the
    /// union multiset cannot tolerate.
    pub fn system_utilization_with(&self, candidate: &Task<T>) -> T {
        let pos = self.canonical_position(candidate);
        let acc = self.us_values[..pos].iter().fold(T::ZERO, |acc, &us| acc + us);
        let acc = acc + candidate.system_utilization();
        self.us_values[pos..].iter().fold(acc, |acc, &us| acc + us)
    }

    /// Largest task area `Amax` (0 when empty).
    #[inline]
    pub fn amax(&self) -> u32 {
        self.areas.keys().next_back().copied().unwrap_or(0)
    }

    /// Smallest task area `Amin` (0 when empty).
    #[inline]
    pub fn amin(&self) -> u32 {
        self.areas.keys().next().copied().unwrap_or(0)
    }

    /// Rebuild the memoized per-task utilization vectors and re-fold the
    /// sums from scratch.
    ///
    /// Mutations do not need this — [`admit`](LiveTaskSet::admit) and
    /// [`remove`](LiveTaskSet::remove) splice the memo vectors directly and
    /// call the private `refold_totals` helper, which yields the
    /// same bits because each memoized value is a position-independent
    /// function of one task. It remains public as the from-scratch
    /// reference the identity is checked against in tests.
    pub fn recompute_aggregates(&mut self) {
        self.ut_values.clear();
        self.ut_values.extend(self.tasks.iter().map(|(_, t)| t.time_utilization()));
        self.us_values.clear();
        self.us_values.extend(self.tasks.iter().map(|(_, t)| t.system_utilization()));
        self.refold_totals();
    }

    /// Re-fold the cached totals from the memoized per-task values in
    /// canonical order — pure adds, no divisions.
    ///
    /// Every mutation calls this, so the cached sums are *exactly* the fold
    /// a fresh [`crate::TaskSet`] built from [`LiveTaskSet::snapshot`]
    /// would compute — no history-dependent accumulation drift, ever.
    fn refold_totals(&mut self) {
        // One pass, two independent accumulation chains: each total is the
        // same left fold as a per-vector pass, but the adds interleave so
        // the FP dependency chains overlap instead of running back-to-back.
        let (mut ut, mut us) = (T::ZERO, T::ZERO);
        for (&u, &s) in self.ut_values.iter().zip(self.us_values.iter()) {
            ut = ut + u;
            us = us + s;
        }
        self.ut_total = ut;
        self.us_total = us;
    }

    /// Freeze the current tasks (canonical order) into an immutable
    /// [`crate::TaskSet`]. Fails with [`ModelError::EmptyTaskSet`] when empty.
    pub fn snapshot(&self) -> Result<TaskSet<T>, ModelError> {
        TaskSet::new(self.tasks.iter().map(|(_, t)| *t).collect())
    }

    /// Freeze the current tasks **plus** `candidate` (inserted at its
    /// canonical position) into an immutable [`crate::TaskSet`] — the set
    /// an admission test evaluates when deciding `Γ ∪ {candidate}` without
    /// mutating the live set.
    ///
    /// The result is exactly the snapshot the live set would produce after
    /// `admit(candidate)`, so a verdict computed on it stays valid once the
    /// candidate commits. Use [`LiveTaskSet::snapshot_with_pos`] to also
    /// learn where the candidate landed.
    pub fn snapshot_with(&self, candidate: &Task<T>) -> Result<TaskSet<T>, ModelError> {
        self.snapshot_with_pos(candidate).map(|(ts, _)| ts)
    }

    /// [`LiveTaskSet::snapshot_with`], also returning the candidate's
    /// positional index in the produced set. Indices `< pos` map to
    /// [`LiveTaskSet::handle_at`]`(i)`, index `pos` is the candidate, and
    /// indices `> pos` map to [`LiveTaskSet::handle_at`]`(i − 1)`.
    pub fn snapshot_with_pos(
        &self,
        candidate: &Task<T>,
    ) -> Result<(TaskSet<T>, usize), ModelError> {
        let pos = self.canonical_position(candidate);
        let mut tasks: Vec<Task<T>> = Vec::with_capacity(self.tasks.len() + 1);
        tasks.extend(self.tasks[..pos].iter().map(|(_, t)| *t));
        tasks.push(*candidate);
        tasks.extend(self.tasks[pos..].iter().map(|(_, t)| *t));
        TaskSet::new(tasks).map(|ts| (ts, pos))
    }

    /// The handle at canonical position `k` (for mapping positional
    /// snapshot diagnostics back to live identities).
    pub fn handle_at(&self, k: usize) -> Option<TaskHandle> {
        self.tasks.get(k).map(|(h, _)| *h)
    }

    /// The next handle value a future [`LiveTaskSet::admit`] would assign.
    /// Captured by snapshots so a restored set keeps the never-reuse
    /// guarantee across the snapshot boundary.
    #[inline]
    pub fn next_handle(&self) -> u64 {
        self.next_handle
    }

    /// Rebuild a live set from snapshotted `(handle, task)` pairs plus the
    /// handle counter captured alongside them.
    ///
    /// Tasks may arrive in any order — they are re-sorted into canonical
    /// [`Task::canonical_cmp`] order and the aggregates are recomputed from
    /// scratch, which (by the purity contract documented on this type)
    /// yields bits identical to any admit/remove history that reaches the
    /// same multiset. Fails when a handle is duplicated or not strictly
    /// below `next_handle` (either would break the never-reuse guarantee).
    pub fn restore(
        pairs: Vec<(TaskHandle, Task<T>)>,
        next_handle: u64,
    ) -> Result<Self, ModelError> {
        let mut seen = std::collections::BTreeSet::new();
        for (handle, _) in &pairs {
            if handle.0 >= next_handle || !seen.insert(handle.0) {
                return Err(ModelError::UnknownTaskHandle { handle: handle.0 });
            }
        }
        let mut live = LiveTaskSet::new();
        live.tasks = pairs;
        live.tasks.sort_by(|(ha, ta), (hb, tb)| ta.canonical_cmp(tb).then(ha.cmp(hb)));
        live.next_handle = next_handle;
        for (_, task) in &live.tasks {
            *live.areas.entry(task.area()).or_insert(0) += 1;
        }
        live.recompute_aggregates();
        Ok(live)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: f64, p: f64, a: u32) -> Task<f64> {
        Task::implicit(c, p, a).unwrap()
    }

    #[test]
    fn starts_empty_with_zero_aggregates() {
        let live: LiveTaskSet<f64> = LiveTaskSet::new();
        assert!(live.is_empty());
        assert_eq!(live.time_utilization(), 0.0);
        assert_eq!(live.system_utilization(), 0.0);
        assert_eq!(live.amax(), 0);
        assert_eq!(live.amin(), 0);
        assert!(live.snapshot().is_err());
    }

    #[test]
    fn admit_maintains_aggregates() {
        let mut live = LiveTaskSet::new();
        let h0 = live.admit(t(1.0, 4.0, 3));
        let h1 = live.admit(t(2.0, 8.0, 5));
        assert_ne!(h0, h1);
        assert_eq!(live.len(), 2);
        assert!((live.time_utilization() - 0.5).abs() < 1e-12);
        assert!((live.system_utilization() - (0.75 + 1.25)).abs() < 1e-12);
        assert_eq!(live.amax(), 5);
        assert_eq!(live.amin(), 3);
    }

    #[test]
    fn remove_returns_task_and_updates_area_multiset() {
        let mut live = LiveTaskSet::new();
        let h0 = live.admit(t(1.0, 4.0, 5));
        let _h1 = live.admit(t(1.0, 4.0, 5));
        let h2 = live.admit(t(1.0, 4.0, 2));
        let removed = live.remove(h0).unwrap();
        assert_eq!(removed.area(), 5);
        // One area-5 task remains, so Amax is unchanged.
        assert_eq!(live.amax(), 5);
        live.remove(h2).unwrap();
        assert_eq!(live.amin(), 5);
        assert_eq!(live.len(), 1);
    }

    #[test]
    fn stale_handle_is_a_clean_error() {
        let mut live = LiveTaskSet::new();
        let h = live.admit(t(1.0, 4.0, 1));
        live.remove(h).unwrap();
        assert_eq!(live.remove(h), Err(ModelError::UnknownTaskHandle { handle: h.0 }));
        // Handles are never reused.
        let h2 = live.admit(t(1.0, 4.0, 1));
        assert_ne!(h, h2);
    }

    #[test]
    fn aggregates_match_recomputation_after_churn() {
        let mut live = LiveTaskSet::new();
        let mut handles = Vec::new();
        for i in 1..=10u32 {
            handles.push(live.admit(t(f64::from(i) * 0.25, 8.0, i)));
        }
        for h in handles.iter().step_by(3) {
            live.remove(*h).unwrap();
        }
        let snap = live.snapshot().unwrap();
        assert_eq!(live.time_utilization(), snap.time_utilization());
        assert_eq!(live.system_utilization(), snap.system_utilization());
        assert_eq!(live.amax(), snap.amax());
        assert_eq!(live.amin(), snap.amin());
        // The spliced memo vectors are bit-identical to a from-scratch
        // rebuild — the identity that licenses the incremental maintenance.
        let (ut, us) = (live.time_utilization(), live.system_utilization());
        live.recompute_aggregates();
        assert_eq!(live.time_utilization(), ut);
        assert_eq!(live.system_utilization(), us);
    }

    #[test]
    fn snapshot_with_places_candidate_canonically() {
        let mut live = LiveTaskSet::new();
        let h = live.admit(t(2.0, 8.0, 3));
        // Candidate sorts before the stored task (smaller exec).
        let cand = t(1.0, 4.0, 7);
        let (snap, pos) = live.snapshot_with_pos(&cand).unwrap();
        assert_eq!(pos, 0);
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.task(0).area(), 7);
        assert_eq!(live.handle_at(0), Some(h));
        assert_eq!(live.handle_at(1), None);
        // The live set itself is untouched.
        assert_eq!(live.len(), 1);
        // Committing the candidate yields the same snapshot at the same
        // position — the purity contract the verdict cache relies on.
        live.admit(cand);
        assert_eq!(live.snapshot().unwrap().tasks(), snap.tasks());
        assert_eq!(live.canonical_position(&cand), 1, "after-equals insertion point");
    }

    #[test]
    fn canonical_order_is_history_independent() {
        let a = t(1.0, 4.0, 3);
        let b = t(2.0, 8.0, 5);
        let c = t(0.5, 2.0, 1);
        let mut fwd = LiveTaskSet::new();
        for task in [a, b, c] {
            fwd.admit(task);
        }
        let mut rev = LiveTaskSet::new();
        let rev_handles: Vec<_> = [c, b, a].iter().map(|task| rev.admit(*task)).collect();
        assert_eq!(fwd.snapshot().unwrap().tasks(), rev.snapshot().unwrap().tasks());
        assert_eq!(fwd.time_utilization(), rev.time_utilization());
        assert_eq!(fwd.system_utilization(), rev.system_utilization());
        // Churn that returns to the same multiset restores identical bits:
        // remove b, re-admit it — order must not depend on arrival time.
        rev.remove(rev_handles[1]).unwrap();
        rev.admit(b);
        assert_eq!(fwd.snapshot().unwrap().tasks(), rev.snapshot().unwrap().tasks());
        assert_eq!(fwd.system_utilization(), rev.system_utilization());
    }

    #[test]
    fn works_in_exact_arithmetic() {
        use crate::rational::Rat64;
        let mut live: LiveTaskSet<Rat64> = LiveTaskSet::new();
        live.admit(Task::implicit(Rat64::new(63, 50).unwrap(), Rat64::from_int(7), 9).unwrap());
        live.admit(Task::implicit(Rat64::new(19, 20).unwrap(), Rat64::from_int(5), 6).unwrap());
        assert_eq!(live.system_utilization(), Rat64::new(69, 25).unwrap());
        assert_eq!(live.time_utilization(), Rat64::new(37, 100).unwrap());
    }
}
