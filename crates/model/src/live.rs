//! Mutable tasksets for online admission control.
//!
//! [`crate::TaskSet`] is deliberately immutable: every offline analysis in
//! this workspace consumes a frozen snapshot. An *admission controller*,
//! however, needs a taskset that changes over time — hardware tasks arrive,
//! get admitted, run for a while and are released — and it needs the
//! aggregate quantities the schedulability bounds are built from
//! (`UT(Γ)`, `US(Γ)`, `Amax`) to be maintained **incrementally** so each
//! admission decision does not start with an O(N) re-summation.
//!
//! [`LiveTaskSet`] provides exactly that: an insert/remove taskset with
//! stable [`TaskHandle`] identities and O(1) aggregate maintenance on
//! admission (`O(log A)` for the area multiset). Removal is O(N) — it keeps
//! insertion order and re-folds the utilization sums so floating-point
//! aggregates never drift from their recomputed values.

use crate::error::ModelError;
use crate::task::Task;
use crate::taskset::TaskSet;
use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Stable identity of a task admitted into a [`LiveTaskSet`].
///
/// Unlike [`crate::TaskId`] (positional within an immutable
/// [`crate::TaskSet`]), handles survive removals of other tasks: they are
/// assigned once per admission and never reused within a live set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskHandle(pub u64);

impl core::fmt::Display for TaskHandle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// A mutable collection of tasks with incrementally-maintained aggregates.
///
/// Unlike [`crate::TaskSet`], a live set may be empty (an admission
/// controller starts with no tasks). Snapshots for the offline analyses are
/// produced by [`LiveTaskSet::snapshot`] / [`LiveTaskSet::snapshot_with`].
#[derive(Debug, Clone)]
pub struct LiveTaskSet<T: Time> {
    /// `(handle, task)` pairs in admission order.
    tasks: Vec<(TaskHandle, Task<T>)>,
    next_handle: u64,
    ut_total: T,
    us_total: T,
    /// Multiset of task areas (`area → count`), for O(log A) `Amax`/`Amin`.
    areas: BTreeMap<u32, usize>,
}

impl<T: Time> Default for LiveTaskSet<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Time> LiveTaskSet<T> {
    /// An empty live set.
    pub fn new() -> Self {
        LiveTaskSet {
            tasks: Vec::new(),
            next_handle: 0,
            ut_total: T::ZERO,
            us_total: T::ZERO,
            areas: BTreeMap::new(),
        }
    }

    /// Number of currently-admitted tasks.
    #[inline]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` when no task is admitted.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Admit a (pre-validated) task, returning its stable handle.
    ///
    /// Aggregates are updated in O(1)/O(log A); schedulability is *not*
    /// checked here — that is the admission controller's job.
    pub fn admit(&mut self, task: Task<T>) -> TaskHandle {
        let handle = TaskHandle(self.next_handle);
        self.next_handle += 1;
        self.ut_total = self.ut_total + task.time_utilization();
        self.us_total = self.us_total + task.system_utilization();
        *self.areas.entry(task.area()).or_insert(0) += 1;
        self.tasks.push((handle, task));
        handle
    }

    /// Release the task with the given handle, returning it.
    ///
    /// O(N): preserves admission order and re-folds the utilization sums so
    /// the floating-point aggregates match a from-scratch recomputation.
    pub fn remove(&mut self, handle: TaskHandle) -> Result<Task<T>, ModelError> {
        let idx = self
            .tasks
            .iter()
            .position(|(h, _)| *h == handle)
            .ok_or(ModelError::UnknownTaskHandle { handle: handle.0 })?;
        let (_, task) = self.tasks.remove(idx);
        match self.areas.get_mut(&task.area()) {
            Some(count) if *count > 1 => *count -= 1,
            _ => {
                self.areas.remove(&task.area());
            }
        }
        self.recompute_aggregates();
        Ok(task)
    }

    /// Look up a task by handle.
    pub fn get(&self, handle: TaskHandle) -> Option<&Task<T>> {
        self.tasks.iter().find(|(h, _)| *h == handle).map(|(_, t)| t)
    }

    /// Iterate over `(handle, &task)` pairs in admission order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskHandle, &Task<T>)> + '_ {
        self.tasks.iter().map(|(h, t)| (*h, t))
    }

    /// Total time utilization `UT(Γ)`, maintained incrementally.
    #[inline]
    pub fn time_utilization(&self) -> T {
        self.ut_total
    }

    /// Total system utilization `US(Γ)`, maintained incrementally.
    #[inline]
    pub fn system_utilization(&self) -> T {
        self.us_total
    }

    /// Largest task area `Amax` (0 when empty).
    #[inline]
    pub fn amax(&self) -> u32 {
        self.areas.keys().next_back().copied().unwrap_or(0)
    }

    /// Smallest task area `Amin` (0 when empty).
    #[inline]
    pub fn amin(&self) -> u32 {
        self.areas.keys().next().copied().unwrap_or(0)
    }

    /// Re-fold the utilization sums from the task list.
    ///
    /// Admissions accumulate left-to-right, so after this call (and after
    /// every [`LiveTaskSet::remove`], which calls it) the cached sums are
    /// *exactly* the fold a fresh [`crate::TaskSet`] would compute —
    /// admission-heavy sessions never accumulate removal drift.
    pub fn recompute_aggregates(&mut self) {
        self.ut_total = self.tasks.iter().fold(T::ZERO, |acc, (_, t)| acc + t.time_utilization());
        self.us_total = self.tasks.iter().fold(T::ZERO, |acc, (_, t)| acc + t.system_utilization());
    }

    /// Freeze the current tasks (admission order) into an immutable
    /// [`crate::TaskSet`]. Fails with [`ModelError::EmptyTaskSet`] when empty.
    pub fn snapshot(&self) -> Result<TaskSet<T>, ModelError> {
        TaskSet::new(self.tasks.iter().map(|(_, t)| *t).collect())
    }

    /// Freeze the current tasks **plus** `candidate` (appended last) into an
    /// immutable [`crate::TaskSet`] — the set an admission test evaluates
    /// when deciding `Γ ∪ {candidate}` without mutating the live set.
    ///
    /// Positional [`crate::TaskId`]s in the resulting set map back to live
    /// tasks in admission order; index `self.len()` is the candidate.
    pub fn snapshot_with(&self, candidate: &Task<T>) -> Result<TaskSet<T>, ModelError> {
        let mut tasks: Vec<Task<T>> = self.tasks.iter().map(|(_, t)| *t).collect();
        tasks.push(*candidate);
        TaskSet::new(tasks)
    }

    /// The handle at admission-order position `k` (for mapping positional
    /// snapshot diagnostics back to live identities).
    pub fn handle_at(&self, k: usize) -> Option<TaskHandle> {
        self.tasks.get(k).map(|(h, _)| *h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: f64, p: f64, a: u32) -> Task<f64> {
        Task::implicit(c, p, a).unwrap()
    }

    #[test]
    fn starts_empty_with_zero_aggregates() {
        let live: LiveTaskSet<f64> = LiveTaskSet::new();
        assert!(live.is_empty());
        assert_eq!(live.time_utilization(), 0.0);
        assert_eq!(live.system_utilization(), 0.0);
        assert_eq!(live.amax(), 0);
        assert_eq!(live.amin(), 0);
        assert!(live.snapshot().is_err());
    }

    #[test]
    fn admit_maintains_aggregates() {
        let mut live = LiveTaskSet::new();
        let h0 = live.admit(t(1.0, 4.0, 3));
        let h1 = live.admit(t(2.0, 8.0, 5));
        assert_ne!(h0, h1);
        assert_eq!(live.len(), 2);
        assert!((live.time_utilization() - 0.5).abs() < 1e-12);
        assert!((live.system_utilization() - (0.75 + 1.25)).abs() < 1e-12);
        assert_eq!(live.amax(), 5);
        assert_eq!(live.amin(), 3);
    }

    #[test]
    fn remove_returns_task_and_updates_area_multiset() {
        let mut live = LiveTaskSet::new();
        let h0 = live.admit(t(1.0, 4.0, 5));
        let _h1 = live.admit(t(1.0, 4.0, 5));
        let h2 = live.admit(t(1.0, 4.0, 2));
        let removed = live.remove(h0).unwrap();
        assert_eq!(removed.area(), 5);
        // One area-5 task remains, so Amax is unchanged.
        assert_eq!(live.amax(), 5);
        live.remove(h2).unwrap();
        assert_eq!(live.amin(), 5);
        assert_eq!(live.len(), 1);
    }

    #[test]
    fn stale_handle_is_a_clean_error() {
        let mut live = LiveTaskSet::new();
        let h = live.admit(t(1.0, 4.0, 1));
        live.remove(h).unwrap();
        assert_eq!(live.remove(h), Err(ModelError::UnknownTaskHandle { handle: h.0 }));
        // Handles are never reused.
        let h2 = live.admit(t(1.0, 4.0, 1));
        assert_ne!(h, h2);
    }

    #[test]
    fn aggregates_match_recomputation_after_churn() {
        let mut live = LiveTaskSet::new();
        let mut handles = Vec::new();
        for i in 1..=10u32 {
            handles.push(live.admit(t(f64::from(i) * 0.25, 8.0, i)));
        }
        for h in handles.iter().step_by(3) {
            live.remove(*h).unwrap();
        }
        let snap = live.snapshot().unwrap();
        assert_eq!(live.time_utilization(), snap.time_utilization());
        assert_eq!(live.system_utilization(), snap.system_utilization());
        assert_eq!(live.amax(), snap.amax());
        assert_eq!(live.amin(), snap.amin());
    }

    #[test]
    fn snapshot_with_appends_candidate_last() {
        let mut live = LiveTaskSet::new();
        let h = live.admit(t(1.0, 4.0, 3));
        let cand = t(2.0, 8.0, 7);
        let snap = live.snapshot_with(&cand).unwrap();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.task(1).area(), 7);
        assert_eq!(live.handle_at(0), Some(h));
        assert_eq!(live.handle_at(1), None);
        // The live set itself is untouched.
        assert_eq!(live.len(), 1);
    }

    #[test]
    fn works_in_exact_arithmetic() {
        use crate::rational::Rat64;
        let mut live: LiveTaskSet<Rat64> = LiveTaskSet::new();
        live.admit(Task::implicit(Rat64::new(63, 50).unwrap(), Rat64::from_int(7), 9).unwrap());
        live.admit(Task::implicit(Rat64::new(19, 20).unwrap(), Rat64::from_int(5), 6).unwrap());
        assert_eq!(live.system_utilization(), Rat64::new(69, 25).unwrap());
        assert_eq!(live.time_utilization(), Rat64::new(37, 100).unwrap());
    }
}
