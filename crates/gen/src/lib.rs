//! # fpga-rt-gen
//!
//! Synthetic taskset generation reproducing the evaluation workloads of
//! *Guan et al., IPDPS 2007*, Section 6:
//!
//! > "Total area size of the FPGA is 100, and task area sizes are randomly
//! > distributed between 1 and 100. Task periods are randomly distributed
//! > in (5, 20). Each task's deadline is equal to its period, and its
//! > execution time is the product of its period and a random factor. Each
//! > group of experiments contains at least 10000 tasksets."
//!
//! [`TasksetSpec`] captures that parameterization; [`figures`] provides the
//! four concrete configurations of Figures 3(a), 3(b), 4(a) and 4(b)
//! (unconstrained, and the spatially/temporally constrained variants).
//!
//! Because the paper plots acceptance ratio *against total system
//! utilization*, the harness needs tasksets in every utilization bin.
//! Naively rejection-sampling the paper's distribution is hopeless for the
//! sparse bins (a 10-task unconstrained set has expected normalized system
//! utilization ≈ 2.5), so [`binning`] also offers *utilization-targeted*
//! generation: draw the shape from the paper's distribution, then rescale
//! execution times to a bin-uniform target (standard practice in
//! schedulability studies; see EXPERIMENTS.md for the fidelity discussion).
//!
//! All generation is deterministic given a seed ([`rand::rngs::StdRng`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binning;
pub mod figures;
pub mod spec;
pub mod uunifast;

pub use binning::{BinnedGenerator, BinningStrategy, UtilizationBins};
pub use figures::FigureWorkload;
pub use spec::TasksetSpec;
pub use uunifast::{uunifast, uunifast_discard};
