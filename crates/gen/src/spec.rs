//! The random taskset distribution of the paper's Section 6.

use fpga_rt_model::{Task, TaskSet};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameterization of the paper's synthetic taskset generator.
///
/// Every task is implicit-deadline (`D = T`):
///
/// * `T ~ U(period_range.0, period_range.1)`
/// * `C = T · f` with `f ~ U(exec_factor_range.0, exec_factor_range.1)`
/// * `A ~ U{area_range.0 ..= area_range.1}` (integer columns)
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TasksetSpec {
    /// Number of tasks `N`.
    pub n_tasks: usize,
    /// Uniform period range `(lo, hi)`, paper: `(5, 20)`.
    pub period_range: (f64, f64),
    /// Uniform execution-factor range; paper: "a random factor", i.e.
    /// `(0, 1)` for the unconstrained figures, `(0, 0.3)` for
    /// temporally-light and `(0.5, 1)` for temporally-heavy tasksets.
    pub exec_factor_range: (f64, f64),
    /// Inclusive uniform area range; paper: `1..=100` unconstrained,
    /// `50..=100` spatially-heavy, `1..=50` spatially-light.
    pub area_range: (u32, u32),
}

impl TasksetSpec {
    /// The paper's unconstrained distribution with `n` tasks (Figure 3).
    pub fn unconstrained(n: usize) -> Self {
        TasksetSpec {
            n_tasks: n,
            period_range: (5.0, 20.0),
            exec_factor_range: (0.0, 1.0),
            area_range: (1, 100),
        }
    }

    /// Check parameter sanity (positive periods, factor in `(0, 1]`
    /// bounds ordered, non-zero areas).
    pub fn validate(&self) -> Result<(), String> {
        if self.n_tasks == 0 {
            return Err("n_tasks must be ≥ 1".into());
        }
        let (plo, phi) = self.period_range;
        if !(plo > 0.0 && phi > plo && phi.is_finite()) {
            return Err(format!("invalid period range ({plo}, {phi})"));
        }
        let (flo, fhi) = self.exec_factor_range;
        if !(flo >= 0.0 && fhi > flo && fhi <= 1.0) {
            return Err(format!("invalid exec factor range ({flo}, {fhi})"));
        }
        let (alo, ahi) = self.area_range;
        if alo == 0 || ahi < alo {
            return Err(format!("invalid area range ({alo}, {ahi})"));
        }
        Ok(())
    }

    /// Draw one taskset.
    ///
    /// Execution factors of exactly zero are redrawn (the model requires
    /// `C > 0`), which matches the paper's open interval `(0, 1)`.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> TaskSet<f64> {
        debug_assert!(self.validate().is_ok(), "invalid spec: {self:?}");
        let tasks = (0..self.n_tasks)
            .map(|_| {
                let period = rng.gen_range(self.period_range.0..self.period_range.1);
                let factor = loop {
                    let f = rng.gen_range(self.exec_factor_range.0..=self.exec_factor_range.1);
                    if f > 0.0 {
                        break f;
                    }
                };
                let area = rng.gen_range(self.area_range.0..=self.area_range.1);
                Task::implicit(period * factor, period, area)
                    .expect("drawn parameters are positive by construction")
            })
            .collect();
        TaskSet::new(tasks).expect("n_tasks ≥ 1")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validation_catches_bad_ranges() {
        let mut s = TasksetSpec::unconstrained(4);
        assert!(s.validate().is_ok());
        s.n_tasks = 0;
        assert!(s.validate().is_err());
        let mut s = TasksetSpec::unconstrained(4);
        s.period_range = (5.0, 5.0);
        assert!(s.validate().is_err());
        let mut s = TasksetSpec::unconstrained(4);
        s.exec_factor_range = (0.5, 0.2);
        assert!(s.validate().is_err());
        let mut s = TasksetSpec::unconstrained(4);
        s.area_range = (0, 10);
        assert!(s.validate().is_err());
    }

    #[test]
    fn generated_tasks_respect_ranges() {
        let spec = TasksetSpec {
            n_tasks: 50,
            period_range: (5.0, 20.0),
            exec_factor_range: (0.0, 0.3),
            area_range: (50, 100),
        };
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let ts = spec.generate(&mut rng);
            assert_eq!(ts.len(), 50);
            for t in &ts {
                assert!(t.period() >= 5.0 && t.period() < 20.0);
                assert!(t.exec() > 0.0);
                assert!(t.time_utilization() <= 0.3 + 1e-12);
                assert!((50..=100).contains(&t.area()));
                assert!(t.is_implicit_deadline());
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = TasksetSpec::unconstrained(10);
        let a = spec.generate(&mut StdRng::seed_from_u64(7));
        let b = spec.generate(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = spec.generate(&mut StdRng::seed_from_u64(8));
        assert_ne!(a, c);
    }

    #[test]
    fn unconstrained_matches_paper_parameters() {
        let s = TasksetSpec::unconstrained(10);
        assert_eq!(s.period_range, (5.0, 20.0));
        assert_eq!(s.area_range, (1, 100));
        assert_eq!(s.exec_factor_range, (0.0, 1.0));
    }
}
