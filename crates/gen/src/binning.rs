//! Utilization-binned taskset generation for acceptance-ratio curves.
//!
//! The paper's Figures 3–4 plot acceptance ratio against *total system
//! utilization*. To estimate a ratio per utilization bin we need many
//! tasksets in each bin. Two strategies are provided:
//!
//! * [`BinningStrategy::Rejection`] — draw from the paper's distribution
//!   verbatim and keep whatever bin the sample lands in. Faithful, but the
//!   sample mass concentrates around the distribution's mean (normalized
//!   US ≈ 2.5 for Figure 3(b)), so low-utilization bins fill slowly or not
//!   at all within the attempt budget.
//! * [`BinningStrategy::ScaledExec`] / [`BinningStrategy::ScaledAreas`] —
//!   draw the *shape* from the paper's distribution, then rescale execution
//!   times (respectively areas) by a common factor so the total system
//!   utilization hits a uniformly drawn target inside the requested bin,
//!   while preserving the attribute that defines the figure's distribution
//!   (factor bounds for Figures 3/4(a), temporal heaviness for 4(b)). This
//!   fills every bin with equal effort; targeted generation is the standard
//!   technique in schedulability-test evaluations.
//!
//! Samples whose rescaled execution time would exceed a deadline are
//! redrawn (such tasksets are trivially infeasible and tell us nothing
//! about the tests).

use crate::spec::TasksetSpec;
use fpga_rt_model::{Task, TaskSet};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Uniform bins over normalized system utilization `US(Γ)/A(H)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilizationBins {
    /// Lower edge of the first bin.
    pub lo: f64,
    /// Upper edge of the last bin.
    pub hi: f64,
    /// Number of bins.
    pub n: usize,
}

impl UtilizationBins {
    /// `n` bins spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0 && hi > lo && lo >= 0.0, "invalid bins [{lo}, {hi}) × {n}");
        UtilizationBins { lo, hi, n }
    }

    /// The paper's effective x-axis: normalized utilization 0–1 in steps of
    /// 0.05.
    pub fn paper_default() -> Self {
        Self::new(0.0, 1.0, 20)
    }

    /// Bin width.
    pub fn width(&self) -> f64 {
        (self.hi - self.lo) / self.n as f64
    }

    /// Index of the bin containing `u`, or `None` when out of range.
    pub fn index_of(&self, u: f64) -> Option<usize> {
        if u < self.lo || u >= self.hi {
            return None;
        }
        let i = ((u - self.lo) / self.width()) as usize;
        Some(i.min(self.n - 1))
    }

    /// Center of bin `i` (the x-coordinate reported in the series).
    pub fn center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.width()
    }

    /// `(lo, hi)` edges of bin `i`.
    pub fn edges(&self, i: usize) -> (f64, f64) {
        (self.lo + i as f64 * self.width(), self.lo + (i + 1) as f64 * self.width())
    }
}

/// How bin quotas are filled; see the [module docs](self).
///
/// The scaling strategies must preserve the *defining attribute* of each
/// figure's distribution, or the figure stops measuring what the paper
/// measured:
///
/// * [`BinningStrategy::ScaledExec`] rescales execution times but rejects
///   draws whose per-task utilization factor would leave the spec's
///   `exec_factor_range` — right for the unconstrained Figure 3 workloads
///   and for the *temporally-light* Figure 4(a) workload (the ≤0.3 factor
///   cap is preserved).
/// * [`BinningStrategy::ScaledAreas`] keeps the drawn factors (preserving
///   *temporal heaviness*) and rescales the integer areas within the
///   spec's range instead — the only faithful way to reach low system
///   utilizations for Figure 4(b), whose tasks must keep `Ci/Ti ≥ 0.5`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BinningStrategy {
    /// Rescale execution times to a bin-uniform utilization target, keeping
    /// every per-task factor inside the spec's `exec_factor_range`
    /// (default).
    #[default]
    ScaledExec,
    /// Rescale task areas (clamped to the spec's `area_range`) to a
    /// bin-uniform utilization target, keeping execution factors as drawn.
    ScaledAreas,
    /// Verbatim rejection sampling of the paper's distribution.
    Rejection,
}

/// Generates tasksets bin by bin.
#[derive(Debug, Clone)]
pub struct BinnedGenerator {
    /// The base distribution.
    pub spec: TasksetSpec,
    /// Device size used for normalization.
    pub device_columns: u32,
    /// The bins.
    pub bins: UtilizationBins,
    /// Fill strategy.
    pub strategy: BinningStrategy,
    /// Attempt budget per requested sample (guards against unfillable
    /// bins, e.g. targets below N·ε for `Rejection`).
    pub max_attempts_per_sample: usize,
}

impl BinnedGenerator {
    /// Default-configured generator for a figure workload.
    pub fn new(spec: TasksetSpec, device_columns: u32, bins: UtilizationBins) -> Self {
        BinnedGenerator {
            spec,
            device_columns,
            bins,
            strategy: BinningStrategy::default(),
            max_attempts_per_sample: 200,
        }
    }

    /// Use a specific strategy.
    pub fn with_strategy(mut self, s: BinningStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Draw one taskset whose normalized system utilization lies in bin
    /// `bin`. Returns `None` when the attempt budget is exhausted.
    pub fn sample_in_bin<R: Rng + ?Sized>(&self, bin: usize, rng: &mut R) -> Option<TaskSet<f64>> {
        let (lo, hi) = self.bins.edges(bin);
        for _ in 0..self.max_attempts_per_sample {
            let candidate = match self.strategy {
                BinningStrategy::Rejection => Some(self.spec.generate(rng)),
                BinningStrategy::ScaledExec => {
                    let target = rng.gen_range(lo.max(1e-6)..hi);
                    self.exec_scaled_sample(target, rng)
                }
                BinningStrategy::ScaledAreas => {
                    let target = rng.gen_range(lo.max(1e-6)..hi);
                    self.area_scaled_sample(target, rng)
                }
            };
            if let Some(ts) = candidate {
                let u = ts.system_utilization() / f64::from(self.device_columns);
                if u >= lo && u < hi {
                    return Some(ts);
                }
            }
        }
        None
    }

    /// Draw a taskset with execution times rescaled towards normalized
    /// system utilization `target`, preserving the spec's per-task factor
    /// bounds.
    fn exec_scaled_sample<R: Rng + ?Sized>(
        &self,
        target: f64,
        rng: &mut R,
    ) -> Option<TaskSet<f64>> {
        let shape = self.spec.generate(rng);
        let us = shape.system_utilization();
        if us <= 0.0 {
            return None;
        }
        let scale = target * f64::from(self.device_columns) / us;
        let (flo, fhi) = self.spec.exec_factor_range;
        let tasks: Option<Vec<Task<f64>>> = shape
            .iter()
            .map(|(_, t)| {
                let c = t.exec() * scale;
                let factor = c / t.period();
                // The rescaled factor must stay inside the distribution the
                // figure studies (and the task feasible: C ≤ D = T).
                if c <= 0.0 || factor > fhi || factor < flo || c > t.deadline() {
                    None
                } else {
                    Task::new(c, t.deadline(), t.period(), t.area()).ok()
                }
            })
            .collect();
        tasks.and_then(|v| TaskSet::new(v).ok())
    }

    /// Draw a taskset with *areas* rescaled towards normalized system
    /// utilization `target`, preserving the drawn execution factors (the
    /// temporally-heavy attribute of Figure 4(b)).
    fn area_scaled_sample<R: Rng + ?Sized>(
        &self,
        target: f64,
        rng: &mut R,
    ) -> Option<TaskSet<f64>> {
        let shape = self.spec.generate(rng);
        let us = shape.system_utilization();
        if us <= 0.0 {
            return None;
        }
        let scale = target * f64::from(self.device_columns) / us;
        let (alo, ahi) = self.spec.area_range;
        let tasks: Option<Vec<Task<f64>>> = shape
            .iter()
            .map(|(_, t)| {
                let a = (f64::from(t.area()) * scale).round() as i64;
                let a = (a.max(i64::from(alo)).min(i64::from(ahi))) as u32;
                Task::new(t.exec(), t.deadline(), t.period(), a).ok()
            })
            .collect();
        tasks.and_then(|v| TaskSet::new(v).ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bin_geometry() {
        let b = UtilizationBins::paper_default();
        assert_eq!(b.n, 20);
        assert!((b.width() - 0.05).abs() < 1e-12);
        assert_eq!(b.index_of(0.0), Some(0));
        assert_eq!(b.index_of(0.049), Some(0));
        assert_eq!(b.index_of(0.05), Some(1));
        assert_eq!(b.index_of(0.999), Some(19));
        assert_eq!(b.index_of(1.0), None);
        assert_eq!(b.index_of(-0.1), None);
        assert!((b.center(0) - 0.025).abs() < 1e-12);
        let (lo, hi) = b.edges(19);
        assert!((lo - 0.95).abs() < 1e-12 && (hi - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid bins")]
    fn zero_bins_panic() {
        let _ = UtilizationBins::new(0.0, 1.0, 0);
    }

    #[test]
    fn scaled_sampling_hits_every_bin() {
        let gen = BinnedGenerator::new(
            TasksetSpec::unconstrained(10),
            100,
            UtilizationBins::paper_default(),
        );
        let mut rng = StdRng::seed_from_u64(1);
        for bin in 0..gen.bins.n {
            let ts =
                gen.sample_in_bin(bin, &mut rng).unwrap_or_else(|| panic!("bin {bin} unfillable"));
            let u = ts.system_utilization() / 100.0;
            let (lo, hi) = gen.bins.edges(bin);
            assert!(u >= lo - 1e-9 && u < hi + 1e-9, "u={u} outside [{lo},{hi})");
            // Rescaled tasks stay individually feasible.
            assert!(!ts.has_trivially_infeasible_task());
        }
    }

    #[test]
    fn rejection_sampling_respects_bin() {
        // 1-task sets spread widely; rejection is viable there.
        let gen = BinnedGenerator::new(
            TasksetSpec::unconstrained(1),
            100,
            UtilizationBins::new(0.0, 1.0, 4),
        )
        .with_strategy(BinningStrategy::Rejection);
        let mut rng = StdRng::seed_from_u64(2);
        let ts = gen.sample_in_bin(1, &mut rng).expect("bin 1 fillable for N=1");
        let u = ts.system_utilization() / 100.0;
        assert!((0.25..0.5).contains(&u));
    }

    #[test]
    fn impossible_bin_returns_none() {
        // Temporally-heavy spec (factor ≥ 0.5, areas ≥ 1): minimum possible
        // normalized US for 10 tasks is 10·0.5·1/100 = 0.05, but scaled
        // sampling can *reduce* exec times, so use Rejection on an
        // unreachable low bin instead.
        let spec = TasksetSpec {
            n_tasks: 10,
            period_range: (5.0, 20.0),
            exec_factor_range: (0.5, 1.0),
            area_range: (50, 100),
        };
        let gen = BinnedGenerator::new(spec, 100, UtilizationBins::new(0.0, 1.0, 100))
            .with_strategy(BinningStrategy::Rejection);
        let mut rng = StdRng::seed_from_u64(3);
        // Bin 0 is [0, 0.01): minimum normalized US is 10·0.5·50/100 = 2.5.
        assert!(gen.sample_in_bin(0, &mut rng).is_none());
    }

    #[test]
    fn scaled_sampling_preserves_shape_distribution() {
        // Areas and periods come straight from the spec even after scaling.
        let spec = TasksetSpec {
            n_tasks: 5,
            period_range: (5.0, 20.0),
            exec_factor_range: (0.0, 1.0),
            area_range: (50, 100),
        };
        let gen = BinnedGenerator::new(spec, 100, UtilizationBins::paper_default());
        let mut rng = StdRng::seed_from_u64(4);
        let ts = gen.sample_in_bin(5, &mut rng).unwrap();
        for t in &ts {
            assert!((50..=100).contains(&t.area()));
            assert!(t.period() >= 5.0 && t.period() < 20.0);
        }
    }
}
