//! The four evaluation workloads of the paper's Figures 3 and 4.

use crate::binning::BinningStrategy;
use crate::spec::TasksetSpec;
use fpga_rt_model::Fpga;
use serde::Serialize;

/// One figure's workload: the taskset distribution plus the device it is
/// evaluated on (always 100 columns in the paper).
///
/// Serialize-only: the `&'static str` identifier fields cannot be
/// deserialized from owned JSON text; rebuild workloads via
/// [`FigureWorkload::by_id`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FigureWorkload {
    /// Stable identifier: `"fig3a"`, `"fig3b"`, `"fig4a"`, `"fig4b"`.
    pub id: &'static str,
    /// Human-readable description from the figure caption.
    pub caption: &'static str,
    /// The taskset distribution.
    pub spec: TasksetSpec,
    /// Device size (always 100 columns in the paper).
    pub device_columns: u32,
    /// Bin-filling strategy that preserves this figure's defining
    /// attribute (see [`BinningStrategy`]): exec-scaling everywhere except
    /// Figure 4(b), whose temporal heaviness forces area-scaling.
    pub strategy: BinningStrategy,
}

impl FigureWorkload {
    /// Figure 3(a): 4 tasks, unconstrained execution time and area size
    /// distributions.
    pub fn fig3a() -> Self {
        FigureWorkload {
            id: "fig3a",
            caption: "4 tasks, unconstrained execution time and area size distributions",
            spec: TasksetSpec::unconstrained(4),
            device_columns: 100,
            strategy: BinningStrategy::ScaledExec,
        }
    }

    /// Figure 3(b): 10 tasks, unconstrained distributions.
    pub fn fig3b() -> Self {
        FigureWorkload {
            id: "fig3b",
            caption: "10 tasks, unconstrained execution time and area size distributions",
            spec: TasksetSpec::unconstrained(10),
            device_columns: 100,
            strategy: BinningStrategy::ScaledExec,
        }
    }

    /// Figure 4(a): 10 spatially heavy (areas 50–100) and temporally light
    /// (utilization ≤ 0.3) tasks.
    pub fn fig4a() -> Self {
        FigureWorkload {
            id: "fig4a",
            caption: "10 spatially heavy and temporally light tasks",
            spec: TasksetSpec {
                n_tasks: 10,
                period_range: (5.0, 20.0),
                exec_factor_range: (0.0, 0.3),
                area_range: (50, 100),
            },
            device_columns: 100,
            strategy: BinningStrategy::ScaledExec,
        }
    }

    /// Figure 4(b): 10 spatially light (areas 1–50) and temporally heavy
    /// (utilization ≥ 0.5) tasks.
    pub fn fig4b() -> Self {
        FigureWorkload {
            id: "fig4b",
            caption: "10 spatially light and temporally heavy tasks",
            spec: TasksetSpec {
                n_tasks: 10,
                period_range: (5.0, 20.0),
                exec_factor_range: (0.5, 1.0),
                area_range: (1, 50),
            },
            device_columns: 100,
            strategy: BinningStrategy::ScaledAreas,
        }
    }

    /// All four figure workloads in paper order.
    pub fn all() -> Vec<FigureWorkload> {
        vec![Self::fig3a(), Self::fig3b(), Self::fig4a(), Self::fig4b()]
    }

    /// Look up a workload by id.
    pub fn by_id(id: &str) -> Option<FigureWorkload> {
        Self::all().into_iter().find(|w| w.id == id)
    }

    /// The device.
    pub fn device(&self) -> Fpga {
        Fpga::new(self.device_columns).expect("non-zero by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_are_valid() {
        for w in FigureWorkload::all() {
            w.spec.validate().unwrap_or_else(|e| panic!("{}: {e}", w.id));
            assert_eq!(w.device_columns, 100, "paper uses A(H)=100 throughout");
        }
    }

    #[test]
    fn lookup_by_id() {
        assert_eq!(FigureWorkload::by_id("fig4a").unwrap().spec.area_range, (50, 100));
        assert!(FigureWorkload::by_id("fig9z").is_none());
    }

    #[test]
    fn figure_parameters_match_paper() {
        assert_eq!(FigureWorkload::fig3a().spec.n_tasks, 4);
        assert_eq!(FigureWorkload::fig3b().spec.n_tasks, 10);
        let heavy_light = FigureWorkload::fig4a().spec;
        assert_eq!(heavy_light.area_range, (50, 100));
        assert!(heavy_light.exec_factor_range.1 <= 0.3);
        let light_heavy = FigureWorkload::fig4b().spec;
        assert_eq!(light_heavy.area_range, (1, 50));
        assert!(light_heavy.exec_factor_range.0 >= 0.5);
    }
}
