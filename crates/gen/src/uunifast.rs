//! UUniFast utilization generation (Bini & Buttazzo, 2005).
//!
//! The classic algorithm for drawing `n` task utilizations that sum to a
//! given total, uniformly over the valid simplex. Not used by the paper
//! itself (which draws independent factors), but provided for controlled
//! sweeps and ablations where the *total* time utilization must be pinned
//! while the per-task split varies.

use rand::Rng;

/// Draw `n` non-negative utilizations summing to `total`, uniformly
/// distributed over the simplex.
///
/// Individual values may exceed 1 when `total > 1`; use
/// [`uunifast_discard`] when per-task feasibility (`ui ≤ 1`) is required.
///
/// # Panics
/// Panics when `n == 0` or `total` is not positive and finite.
pub fn uunifast<R: Rng + ?Sized>(n: usize, total: f64, rng: &mut R) -> Vec<f64> {
    assert!(n > 0, "uunifast needs at least one task");
    assert!(total > 0.0 && total.is_finite(), "invalid total {total}");
    let mut out = Vec::with_capacity(n);
    let mut sum = total;
    for i in 1..n {
        let next: f64 = sum * rng.gen::<f64>().powf(1.0 / (n - i) as f64);
        out.push(sum - next);
        sum = next;
    }
    out.push(sum);
    out
}

/// UUniFast-Discard: redraw until every utilization is at most 1.
///
/// Returns `None` when `total > n` (impossible) or when `max_attempts`
/// redraws all fail (the acceptance probability shrinks as `total → n`).
pub fn uunifast_discard<R: Rng + ?Sized>(
    n: usize,
    total: f64,
    max_attempts: usize,
    rng: &mut R,
) -> Option<Vec<f64>> {
    if total > n as f64 {
        return None;
    }
    for _ in 0..max_attempts {
        let v = uunifast(n, total, rng);
        if v.iter().all(|&u| u <= 1.0) {
            return Some(v);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sums_to_total() {
        let mut rng = StdRng::seed_from_u64(9);
        for &(n, total) in &[(1usize, 0.5f64), (4, 2.0), (10, 0.7), (3, 2.9)] {
            let v = uunifast(n, total, &mut rng);
            assert_eq!(v.len(), n);
            let sum: f64 = v.iter().sum();
            assert!((sum - total).abs() < 1e-9, "n={n} total={total} sum={sum}");
            assert!(v.iter().all(|&u| u >= 0.0));
        }
    }

    #[test]
    fn single_task_gets_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(uunifast(1, 0.42, &mut rng), vec![0.42]);
    }

    #[test]
    fn discard_bounds_each_utilization() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = uunifast_discard(4, 3.5, 10_000, &mut rng).expect("feasible");
        assert!(v.iter().all(|&u| u <= 1.0));
        let sum: f64 = v.iter().sum();
        assert!((sum - 3.5).abs() < 1e-9);
    }

    #[test]
    fn discard_rejects_impossible_totals() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(uunifast_discard(2, 2.5, 100, &mut rng).is_none());
    }

    #[test]
    fn distribution_is_not_degenerate() {
        // The first component should vary across draws (sanity check that we
        // don't always return the same split).
        let mut rng = StdRng::seed_from_u64(4);
        let a = uunifast(5, 1.0, &mut rng)[0];
        let b = uunifast(5, 1.0, &mut rng)[0];
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn zero_tasks_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = uunifast(0, 1.0, &mut rng);
    }
}
