//! Property tests for the binned generators: every produced taskset lands
//! in its bin *and* preserves the defining attribute of its figure's
//! distribution (the fidelity requirement DESIGN.md §3 calls load-bearing).

use fpga_rt_gen::{BinnedGenerator, BinningStrategy, FigureWorkload, UtilizationBins};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ScaledExec (Figures 3a/3b/4a): utilization lands in the bin, areas
    /// and periods come from the spec, and every per-task factor stays
    /// inside the spec's factor bounds.
    #[test]
    fn scaled_exec_preserves_factor_bounds(seed in 0u64..10_000, bin in 0usize..8) {
        let workload = FigureWorkload::fig4a(); // factor cap 0.3 is the bite
        let bins = UtilizationBins::new(0.0, 0.8, 8);
        let gen = BinnedGenerator::new(workload.spec, workload.device_columns, bins);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Some(ts) = gen.sample_in_bin(bin, &mut rng) {
            let u = ts.system_utilization() / 100.0;
            let (lo, hi) = bins.edges(bin);
            prop_assert!(u >= lo && u < hi);
            for t in &ts {
                let f = t.time_utilization();
                prop_assert!(f <= 0.3 + 1e-9, "temporal lightness broken: {f}");
                prop_assert!((50..=100).contains(&t.area()));
                prop_assert!(t.period() >= 5.0 && t.period() < 20.0);
            }
        }
    }

    /// ScaledAreas (Figure 4b): utilization lands in the bin and *factors*
    /// are untouched (temporal heaviness preserved), areas stay in range.
    #[test]
    fn scaled_areas_preserves_temporal_heaviness(seed in 0u64..10_000, bin in 1usize..8) {
        let workload = FigureWorkload::fig4b();
        let bins = UtilizationBins::new(0.0, 0.8, 8);
        let gen = BinnedGenerator::new(workload.spec, workload.device_columns, bins)
            .with_strategy(BinningStrategy::ScaledAreas);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Some(ts) = gen.sample_in_bin(bin, &mut rng) {
            let u = ts.system_utilization() / 100.0;
            let (lo, hi) = bins.edges(bin);
            prop_assert!(u >= lo && u < hi);
            for t in &ts {
                let f = t.time_utilization();
                prop_assert!(f >= 0.5 - 1e-9, "temporal heaviness broken: {f}");
                prop_assert!(f <= 1.0 + 1e-9);
                prop_assert!((1..=50).contains(&t.area()));
            }
        }
    }

    /// Rejection sampling returns only unmodified draws: factors, areas and
    /// periods all inside the raw spec ranges, utilization in the bin.
    #[test]
    fn rejection_is_verbatim(seed in 0u64..10_000) {
        let workload = FigureWorkload::fig3a();
        // Wide bins so rejection has a chance.
        let bins = UtilizationBins::new(0.0, 4.0, 4);
        let gen = BinnedGenerator::new(workload.spec, workload.device_columns, bins)
            .with_strategy(BinningStrategy::Rejection);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Some(ts) = gen.sample_in_bin(1, &mut rng) {
            let u = ts.system_utilization() / 100.0;
            prop_assert!((1.0..2.0).contains(&u));
            for t in &ts {
                prop_assert!(t.time_utilization() <= 1.0 + 1e-9);
                prop_assert!((1..=100).contains(&t.area()));
            }
        }
    }
}
