//! Deterministic, seedable arrival-stream synthesis.
//!
//! A [`LoadSpec`] describes one traffic profile; [`synthesize`] expands it
//! into a sorted op stream — admit / release / query operations multiplexed
//! over many logical sessions, each op stamped with a nanosecond arrival
//! time. Synthesis is single-threaded and driven by one seeded
//! [`rand::rngs::StdRng`], so the stream is a pure function of the spec:
//! the same `(profile, ops, sessions, columns, seed)` always yields the
//! same byte-for-byte stream, whatever machine or worker count later
//! replays it.
//!
//! Three traffic shapes:
//!
//! * [`ArrivalProfile::Poisson`] — exponentially distributed inter-arrival
//!   gaps (a memoryless open-loop client population), sessions drawn
//!   uniformly, admit-heavy op mix with task utilizations drawn in
//!   UUniFast waves ([`fpga_rt_gen::uunifast()`]) so the offered load hovers
//!   around the admission boundary where the cascade actually escalates.
//! * [`ArrivalProfile::Bursty`] — an on/off source: bursts of back-to-back
//!   ops concentrated on a few hot sessions, separated by long idle gaps;
//!   the shape that exposes queueing at the per-shard pin.
//! * [`ArrivalProfile::Adversarial`] — every session cycles a knife-edge
//!   task pair built for the device the way the paper's Table 1 builds one
//!   for 10 columns: the second admission sits *exactly* on the DP bound,
//!   forcing the controller's exact [`Rat64`](fpga_rt_model::Rat64) tier —
//!   the most expensive decision path reachable from the wire.

use fpga_rt_gen::uunifast;
use fpga_rt_service::TaskParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The traffic shape of a synthesized arrival stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProfile {
    /// Exponential inter-arrival gaps, uniform session fan-out.
    Poisson,
    /// On/off bursts on hot sessions separated by idle gaps.
    Bursty,
    /// Knife-edge Table-1 cycles forcing the exact cascade tier.
    Adversarial,
}

impl ArrivalProfile {
    /// Stable wire/CLI name.
    pub fn as_str(self) -> &'static str {
        match self {
            ArrivalProfile::Poisson => "poisson",
            ArrivalProfile::Bursty => "bursty",
            ArrivalProfile::Adversarial => "adversarial",
        }
    }

    /// Parse a CLI name.
    pub fn by_id(id: &str) -> Option<Self> {
        match id {
            "poisson" => Some(ArrivalProfile::Poisson),
            "bursty" => Some(ArrivalProfile::Bursty),
            "adversarial" => Some(ArrivalProfile::Adversarial),
            _ => None,
        }
    }

    /// All profiles in reporting order.
    pub fn all() -> Vec<ArrivalProfile> {
        vec![ArrivalProfile::Poisson, ArrivalProfile::Bursty, ArrivalProfile::Adversarial]
    }
}

impl core::fmt::Display for ArrivalProfile {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What one arrival asks the admission service to do.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// Admit a candidate task.
    Admit(TaskParams),
    /// Release the oldest still-live handle of the session (degrades to a
    /// query when the session has no live task — the stream is fixed
    /// up-front, the live set is not).
    Release,
    /// Re-evaluate the session's current live set.
    Query,
}

/// One synthesized arrival.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalOp {
    /// Arrival time in nanoseconds from stream start (non-decreasing).
    pub at_ns: u64,
    /// Logical session index (becomes the named protocol session `s{k}`,
    /// an independent controller on whatever shard its name hashes to).
    pub session: u32,
    /// The operation.
    pub kind: OpKind,
}

/// One synthesized arrival stream's parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSpec {
    /// Traffic shape.
    pub profile: ArrivalProfile,
    /// Operations in the stream.
    pub ops: usize,
    /// Logical sessions the stream multiplexes over (each one an
    /// independent admission controller on its own device).
    pub sessions: u32,
    /// Device size in columns of every session's controller.
    pub columns: u32,
    /// Stream seed.
    pub seed: u64,
}

impl LoadSpec {
    /// A spec with the defaults the CLI documents.
    pub fn new(profile: ArrivalProfile, seed: u64) -> Self {
        LoadSpec { profile, ops: 4000, sessions: 32, columns: 100, seed }
    }

    /// Check parameter sanity; the adversarial profile additionally needs
    /// at least 5 columns for its knife-edge construction (below that the
    /// wide task's row of the DP condition fails before the knife edge is
    /// reached and the cascade settles in `f64`).
    pub fn validate(&self) -> Result<(), String> {
        if self.ops == 0 {
            return Err("ops must be ≥ 1".into());
        }
        if self.sessions == 0 {
            return Err("sessions must be ≥ 1".into());
        }
        if self.columns == 0 {
            return Err("columns must be ≥ 1".into());
        }
        if self.profile == ArrivalProfile::Adversarial && self.columns < 5 {
            return Err(format!(
                "the adversarial profile needs --columns ≥ 5 to build its knife-edge \
                 pair, got {}",
                self.columns
            ));
        }
        Ok(())
    }
}

/// Exponential gap with the given mean, quantized to nanoseconds.
fn exp_gap_ns(rng: &mut StdRng, mean_ns: f64) -> u64 {
    // Inverse CDF over u ∈ [0, 1); 1 − u stays in (0, 1] so ln is finite.
    let u: f64 = rng.gen();
    (-(1.0 - u).ln() * mean_ns) as u64
}

/// Expand a spec into its op stream: `ops` arrivals sorted by `at_ns`
/// (non-decreasing by construction — times are cumulative sums of
/// non-negative gaps).
pub fn synthesize(spec: &LoadSpec) -> Result<Vec<ArrivalOp>, String> {
    spec.validate()?;
    // Domain-separate the stream RNG from other consumers of the seed.
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x4c4f_4144_4745_4e31);
    let mut out = Vec::with_capacity(spec.ops);
    match spec.profile {
        ArrivalProfile::Poisson => poisson(spec, &mut rng, &mut out),
        ArrivalProfile::Bursty => bursty(spec, &mut rng, &mut out),
        ArrivalProfile::Adversarial => adversarial(spec, &mut rng, &mut out),
    }
    debug_assert!(out.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
    Ok(out)
}

/// Tasks per UUniFast wave of the Poisson/bursty admit mix.
const WAVE_TASKS: usize = 16;
/// Total time utilization each wave offers — slightly above what a device
/// can take, so streams cross the admission boundary instead of idling
/// under it.
const WAVE_UTILIZATION: f64 = 1.6;

/// Draw the next admit candidate: utilizations come from UUniFast waves
/// (16 tasks summing to US 1.6), periods from the paper's U(5, 20) ms
/// range, areas uniform over the lower half of the device.
fn next_admit(rng: &mut StdRng, wave: &mut Vec<f64>, columns: u32) -> OpKind {
    if wave.is_empty() {
        *wave = uunifast(WAVE_TASKS, WAVE_UTILIZATION, rng);
    }
    // UUniFast draws can exceed 1 (total > 1); cap so C ≤ T holds.
    let utilization = wave.pop().expect("refilled above").min(1.0);
    let period = rng.gen_range(5.0..20.0);
    let exec = (utilization * period).max(1e-3);
    let area = rng.gen_range(1..=(columns / 2).max(1));
    OpKind::Admit(TaskParams { exec, deadline: period, period, area })
}

/// Weighted op mix shared by Poisson and bursty: admit-heavy with enough
/// releases to churn handles and queries to sample full-set re-checks.
fn next_kind(rng: &mut StdRng, wave: &mut Vec<f64>, columns: u32) -> OpKind {
    match rng.gen_range(0u32..100) {
        0..=59 => next_admit(rng, wave, columns),
        60..=84 => OpKind::Release,
        _ => OpKind::Query,
    }
}

fn poisson(spec: &LoadSpec, rng: &mut StdRng, out: &mut Vec<ArrivalOp>) {
    // Mean inter-arrival 10µs — ~100k ops/s offered, far above what slow
    // tiers sustain, so replay measures service time, not idle gaps.
    let mut at_ns = 0u64;
    let mut wave = Vec::new();
    for _ in 0..spec.ops {
        at_ns += exp_gap_ns(rng, 10_000.0);
        let session = rng.gen_range(0..spec.sessions);
        let kind = next_kind(rng, &mut wave, spec.columns);
        out.push(ArrivalOp { at_ns, session, kind });
    }
}

fn bursty(spec: &LoadSpec, rng: &mut StdRng, out: &mut Vec<ArrivalOp>) {
    let mut at_ns = 0u64;
    let mut wave = Vec::new();
    while out.len() < spec.ops {
        // Off period, then a burst concentrated on one hot session (80% of
        // the burst's ops) with the rest sprayed uniformly.
        at_ns += exp_gap_ns(rng, 2_000_000.0);
        let burst = rng.gen_range(8usize..=64).min(spec.ops - out.len());
        let hot = rng.gen_range(0..spec.sessions);
        for _ in 0..burst {
            at_ns += exp_gap_ns(rng, 200.0);
            let session = if rng.gen_bool(0.8) { hot } else { rng.gen_range(0..spec.sessions) };
            let kind = next_kind(rng, &mut wave, spec.columns);
            out.push(ArrivalOp { at_ns, session, kind });
        }
    }
}

/// A knife-edge pair for a `columns`-wide device, built the way the
/// paper's Table 1 builds one for 10 columns: admitting `B` onto a live
/// set holding `A` satisfies `B`'s row of the DP condition with **exact
/// equality**, so the controller escalates to the exact tier and proves
/// the equality in `Rat64` arithmetic.
///
/// Construction: `A = (1, W−1, W−1, W−1)` occupies all but one column, so
/// the busy-area bound is `Abnd = W − Amax + 1 = 2` and `US(A) = 1`;
/// `B = (2.5, 5, 5, 3)` has `UT(B) = 1/2`, making `B`'s row
/// `US(Γ) ≤ Abnd·(1 − UT(B)) + US(B)` read `1 + 3/2 ≤ 2·(1/2) + 3/2` —
/// an equality for every `W ≥ 5` (below that `A`'s own row fails first).
fn knife_edge_pair(columns: u32) -> (TaskParams, TaskParams) {
    let w1 = f64::from(columns - 1);
    (
        TaskParams { exec: 1.0, deadline: w1, period: w1, area: columns - 1 },
        TaskParams { exec: 2.5, deadline: 5.0, period: 5.0, area: 3 },
    )
}

fn adversarial(spec: &LoadSpec, rng: &mut StdRng, out: &mut Vec<ArrivalOp>) {
    let (a, b) = knife_edge_pair(spec.columns);
    // Each session runs the 5-op cycle admit A → admit B (exact tier) →
    // query → release → release; sessions are interleaved by drawing which
    // session advances next, with each session tracking its own cycle
    // position so the knife edge is preserved per session.
    let mut phase = vec![0u8; spec.sessions as usize];
    let mut at_ns = 0u64;
    for _ in 0..spec.ops {
        at_ns += exp_gap_ns(rng, 5_000.0);
        let session = rng.gen_range(0..spec.sessions);
        let p = &mut phase[session as usize];
        let kind = match *p {
            0 => OpKind::Admit(a),
            1 => OpKind::Admit(b),
            2 => OpKind::Query,
            _ => OpKind::Release,
        };
        *p = (*p + 1) % 5;
        out.push(ArrivalOp { at_ns, session, kind });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(profile: ArrivalProfile) -> LoadSpec {
        LoadSpec { profile, ops: 500, sessions: 8, columns: 100, seed: 7 }
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        for profile in ArrivalProfile::all() {
            let a = synthesize(&spec(profile)).unwrap();
            let b = synthesize(&spec(profile)).unwrap();
            assert_eq!(a, b, "{profile}");
            let c = synthesize(&LoadSpec { seed: 8, ..spec(profile) }).unwrap();
            assert_ne!(a, c, "{profile}: different seed must change the stream");
        }
    }

    #[test]
    fn streams_are_sorted_sized_and_in_session_range() {
        for profile in ArrivalProfile::all() {
            let s = spec(profile);
            let ops = synthesize(&s).unwrap();
            assert_eq!(ops.len(), s.ops, "{profile}");
            assert!(ops.windows(2).all(|w| w[0].at_ns <= w[1].at_ns), "{profile}: unsorted");
            assert!(ops.iter().all(|o| o.session < s.sessions), "{profile}");
        }
    }

    #[test]
    fn admitted_tasks_are_valid_model_tasks() {
        for profile in ArrivalProfile::all() {
            for op in synthesize(&spec(profile)).unwrap() {
                if let OpKind::Admit(params) = op.kind {
                    let task = params.to_task().expect("synthesized params must validate");
                    assert!(task.area() <= 100);
                }
            }
        }
    }

    #[test]
    fn adversarial_cycles_start_with_the_knife_edge_pair() {
        let ops = synthesize(&spec(ArrivalProfile::Adversarial)).unwrap();
        let (a, _) = knife_edge_pair(100);
        // The first op of every session is admit A.
        let mut seen = std::collections::HashSet::new();
        for op in &ops {
            if seen.insert(op.session) {
                assert_eq!(op.kind, OpKind::Admit(a), "session {}", op.session);
            }
        }
    }

    #[test]
    fn knife_edge_pair_forces_the_exact_tier_on_any_device() {
        use fpga_rt_model::Fpga;
        use fpga_rt_service::{AdmissionController, ControllerConfig, Tier};
        for columns in [5u32, 10, 33, 100, 1000] {
            let mut ctl =
                AdmissionController::new(Fpga::new(columns).unwrap(), ControllerConfig::default());
            let (a, b) = knife_edge_pair(columns);
            let (first, _) = ctl.admit(a.to_task().unwrap(), false);
            assert!(first.accepted, "columns={columns}: {first:?}");
            let (second, _) = ctl.admit(b.to_task().unwrap(), false);
            assert!(second.accepted, "columns={columns}: {second:?}");
            assert_eq!(second.tier, Tier::Exact, "columns={columns}: {second:?}");
        }
    }

    #[test]
    fn validation_rejects_bad_specs() {
        assert!(LoadSpec { ops: 0, ..spec(ArrivalProfile::Poisson) }.validate().is_err());
        assert!(LoadSpec { sessions: 0, ..spec(ArrivalProfile::Poisson) }.validate().is_err());
        assert!(LoadSpec { columns: 0, ..spec(ArrivalProfile::Poisson) }.validate().is_err());
        let err =
            LoadSpec { columns: 4, ..spec(ArrivalProfile::Adversarial) }.validate().unwrap_err();
        assert!(err.contains("≥ 5"), "{err}");
        assert!(LoadSpec { columns: 4, ..spec(ArrivalProfile::Poisson) }.validate().is_ok());
    }

    #[test]
    fn profile_names_round_trip() {
        for p in ArrivalProfile::all() {
            assert_eq!(ArrivalProfile::by_id(p.as_str()), Some(p));
        }
        assert_eq!(ArrivalProfile::by_id("zipf"), None);
    }
}
