//! The load-generator report: schema, JSON/CSV/text rendering.
//!
//! A [`LoadReport`] is the artifact of one `fpga-rt loadgen` run. It is
//! designed to be **byte-identical across worker counts**: nothing in it
//! records the worker count, the wall-clock time, or any other
//! replay-environment detail — only the run's *budget* (the parameters
//! that define the synthesized streams), the per-profile outcome counts,
//! and the latency summaries (all zeros under `--deterministic`).
//!
//! The JSON form carries the schema tag [`SCHEMA`]
//! (`fpga-rt-loadgen-smoke/1`), which `scripts/bench_gate.py` consumes as
//! the end-to-end latency regression gate next to the microbenchmark
//! schema `fpga-rt-bench-smoke/2`.

use fpga_rt_service::TierCounts;
use serde::{Deserialize, Serialize};

use crate::hist::LatencyHistogram;

/// Schema tag of the JSON artifact (consumed by `scripts/bench_gate.py`).
pub const SCHEMA: &str = "fpga-rt-loadgen-smoke/1";

pub use fpga_rt_obs::runner_id;

/// The parameters that define a run's synthesized streams. Two reports are
/// comparable only when their budgets are equal — `bench_gate.py` refuses
/// a budget mismatch outright, like the microbenchmark gate does for
/// sample/iteration budgets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Budget {
    /// Operations per profile per round.
    pub ops: usize,
    /// Named protocol sessions the streams multiplex over.
    pub sessions: u32,
    /// Stream replays per profile (seed advances per round).
    pub rounds: u32,
    /// Device columns of every session's controller.
    pub columns: u32,
    /// Base stream seed.
    pub seed: u64,
    /// Whether latencies were zeroed for byte-diffable output.
    pub deterministic: bool,
}

/// Latency summary of one profile's ops, in nanoseconds. Quantiles are
/// bucket lower bounds (see [`crate::hist`]); all zeros in deterministic
/// mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Median.
    pub p50_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Exact maximum.
    pub max_ns: u64,
    /// Truncated mean.
    pub mean_ns: u64,
}

impl LatencySummary {
    /// Summarize a histogram (all zeros when it is empty).
    pub fn from_histogram(hist: &LatencyHistogram) -> Self {
        LatencySummary {
            p50_ns: hist.quantile(0.50).unwrap_or(0),
            p99_ns: hist.quantile(0.99).unwrap_or(0),
            p999_ns: hist.quantile(0.999).unwrap_or(0),
            max_ns: hist.max(),
            mean_ns: hist.mean().unwrap_or(0),
        }
    }
}

/// Outcome of replaying one profile's stream(s).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Profile name (`poisson`, `bursty`, `adversarial`).
    pub profile: String,
    /// Total ops replayed (all rounds).
    pub ops: u64,
    /// Admit ops in the stream.
    pub admits: u64,
    /// Admits accepted by the controller.
    pub accepted: u64,
    /// Admits rejected by the controller.
    pub rejected: u64,
    /// Release ops that released a live handle.
    pub releases: u64,
    /// Release ops that found no live handle and degraded to a query.
    pub degraded_releases: u64,
    /// Query ops in the stream.
    pub queries: u64,
    /// Which cascade tier settled each admit decision, summed
    /// (commutatively) over every session's `QueryStats`.
    pub tiers: TierCounts,
    /// Per-op decision latency.
    pub latency: LatencySummary,
}

/// The full artifact of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Runner class that produced the latencies (see [`runner_id`]).
    pub runner: String,
    /// The run's stream-defining parameters.
    pub budget: Budget,
    /// One entry per profile, in the order they were run.
    pub profiles: Vec<ProfileReport>,
}

impl LoadReport {
    /// Render as pretty-printed JSON with a trailing newline (the artifact
    /// format committed as `BENCH_6.json`).
    pub fn render_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serialization is infallible");
        s.push('\n');
        s
    }

    /// Render as CSV: one header plus one row per profile.
    pub fn render_csv(&self) -> String {
        let mut out = String::from(
            "profile,ops,admits,accepted,rejected,releases,degraded_releases,queries,\
             tier_dp_inc,tier_gn1,tier_gn2,tier_exact,p50_ns,p99_ns,p999_ns,max_ns,mean_ns\n",
        );
        for p in &self.profiles {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                p.profile,
                p.ops,
                p.admits,
                p.accepted,
                p.rejected,
                p.releases,
                p.degraded_releases,
                p.queries,
                p.tiers.dp_inc,
                p.tiers.gn1,
                p.tiers.gn2,
                p.tiers.exact,
                p.latency.p50_ns,
                p.latency.p99_ns,
                p.latency.p999_ns,
                p.latency.max_ns,
                p.latency.mean_ns,
            ));
        }
        out
    }

    /// Render the human-readable summary table printed to stdout. Contains
    /// nothing replay-environment-specific, so the CI smoke job can
    /// byte-diff it across worker counts just like the JSON artifact.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "loadgen: {} ops x {} rounds over {} sessions, {} columns, seed {}{}\n",
            self.budget.ops,
            self.budget.rounds,
            self.budget.sessions,
            self.budget.columns,
            self.budget.seed,
            if self.budget.deterministic { ", deterministic (latencies zeroed)" } else { "" },
        ));
        out.push_str(&format!(
            "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
            "profile",
            "ops",
            "accept",
            "reject",
            "dp-inc",
            "gn1",
            "gn2",
            "exact",
            "p50_ns",
            "p99_ns",
            "p999_ns",
            "max_ns",
        ));
        for p in &self.profiles {
            out.push_str(&format!(
                "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                p.profile,
                p.ops,
                p.accepted,
                p.rejected,
                p.tiers.dp_inc,
                p.tiers.gn1,
                p.tiers.gn2,
                p.tiers.exact,
                p.latency.p50_ns,
                p.latency.p99_ns,
                p.latency.p999_ns,
                p.latency.max_ns,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> LoadReport {
        LoadReport {
            schema: SCHEMA.to_string(),
            runner: "test-runner".to_string(),
            budget: Budget {
                ops: 100,
                sessions: 4,
                rounds: 1,
                columns: 100,
                seed: 7,
                deterministic: true,
            },
            profiles: vec![ProfileReport {
                profile: "poisson".to_string(),
                ops: 100,
                admits: 60,
                accepted: 40,
                rejected: 20,
                releases: 20,
                degraded_releases: 5,
                queries: 15,
                tiers: TierCounts { dp_inc: 50, gn1: 5, gn2: 4, exact: 1 },
                latency: LatencySummary::default(),
            }],
        }
    }

    #[test]
    fn json_round_trips_and_ends_with_newline() {
        let report = sample_report();
        let json = report.render_json();
        assert!(json.ends_with('\n'));
        let back: LoadReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn csv_has_header_and_one_row_per_profile() {
        let csv = sample_report().render_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("profile,ops,"));
        assert!(lines[1].starts_with("poisson,100,60,40,20,"));
    }

    #[test]
    fn text_table_mentions_every_profile_and_no_environment() {
        let text = sample_report().render_text();
        assert!(text.contains("poisson"));
        assert!(text.contains("deterministic"));
        // Nothing worker- or host-specific may leak into the diffable text.
        assert!(!text.contains("worker"));
        assert!(!text.contains("test-runner"));
    }

    #[test]
    fn latency_summary_of_empty_histogram_is_zero() {
        let summary = LatencySummary::from_histogram(&LatencyHistogram::new());
        assert_eq!(summary, LatencySummary::default());
    }

    #[test]
    fn runner_id_honors_the_env_override() {
        // Avoid mutating process env (tests run in parallel): only assert
        // the fallback shape when the override is absent.
        let id = runner_id();
        if std::env::var("FPGA_RT_RUNNER").is_err() {
            assert!(id.starts_with(std::env::consts::OS));
            assert!(id.ends_with(std::env::consts::ARCH));
        }
    }
}
