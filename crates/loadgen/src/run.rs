//! Replaying synthesized streams against the in-process admission pipeline.
//!
//! Each logical session is a **named protocol session** (`s0`, `s1`, …)
//! exactly as the multi-tenant server sees them: its name is routed to a
//! [`ShardedPool`] shard by [`fpga_rt_service::session_shard`] — the same
//! FNV-1a placement the server uses for protocol-v2 `session` ids — and
//! the shard's worker owns a map of per-session states (an independent
//! [`AdmissionController`] plus the session's live handles), materialized
//! on first use. Because the pool pins a shard to exactly one worker and
//! processes its items sequentially, and sessions never span shards,
//! replay outcomes (decisions, tier counts, degraded releases) are
//! **invariant in the worker count** — only the measured latencies differ
//! between runs, and `--deterministic` zeroes those, which is what makes
//! the emitted artifacts byte-diffable in CI.
//!
//! A `Release` op releases the session's **oldest** live handle (FIFO); a
//! release arriving at a session with no live task degrades to a query so
//! the op stream can be fixed up-front without tracking accept/reject
//! outcomes during synthesis.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use fpga_rt_model::{Fpga, TaskHandle};
use fpga_rt_obs::{Obs, Registry, Snapshot};
use fpga_rt_pool::{PoolConfig, ShardedPool};
use fpga_rt_service::protocol::counters as cache_counters;
use fpga_rt_service::{session_shard, AdmissionController, ControllerConfig, QueryStats};

use crate::hist::LatencyHistogram;
use crate::profile::{synthesize, ArrivalProfile, LoadSpec, OpKind};
use crate::report::{runner_id, Budget, LatencySummary, LoadReport, ProfileReport, SCHEMA};

/// Parameters of one `fpga-rt loadgen` run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadConfig {
    /// Operations per profile per round.
    pub ops: usize,
    /// Named protocol sessions (`s0`…) the streams multiplex over; also
    /// the pool shard count their names are FNV-placed onto.
    pub sessions: u32,
    /// Device columns of every session's controller.
    pub columns: u32,
    /// Base stream seed; round `r` replays the stream for seed
    /// `seed + r`, so rounds exercise distinct (but reproducible) traffic.
    pub seed: u64,
    /// Pool worker threads (`0` = available parallelism). Never recorded
    /// in any output.
    pub workers: usize,
    /// Stream replays per profile.
    pub rounds: u32,
    /// Zero all latencies so artifacts are byte-diffable.
    pub deterministic: bool,
    /// Per-session verdict-cache capacity (`None` disables caching).
    /// Deliberately **not** part of [`Budget`]: cache on/off runs produce
    /// byte-identical deterministic artifacts, so the latency gate can
    /// compare them under one budget.
    pub cache: Option<usize>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            ops: 4000,
            sessions: 32,
            columns: 100,
            seed: 20070326,
            workers: 0,
            rounds: 1,
            deterministic: false,
            cache: Some(1024),
        }
    }
}

impl LoadConfig {
    /// The stream spec of one profile/round combination.
    fn spec(&self, profile: ArrivalProfile, round: u32) -> LoadSpec {
        LoadSpec {
            profile,
            ops: self.ops,
            sessions: self.sessions,
            columns: self.columns,
            seed: self.seed.wrapping_add(u64::from(round)),
        }
    }

    /// The budget block recorded in reports.
    fn budget(&self) -> Budget {
        Budget {
            ops: self.ops,
            sessions: self.sessions,
            rounds: self.rounds,
            columns: self.columns,
            seed: self.seed,
            deterministic: self.deterministic,
        }
    }
}

/// One named session's replay state: its controller and live handles
/// (FIFO).
struct Session {
    controller: AdmissionController,
    live: VecDeque<TaskHandle>,
}

/// One shard's replay state: the named sessions the FNV-1a placement
/// routed here, materialized on first use — the same shape as the
/// multi-tenant server's per-shard session map.
struct Tenants {
    sessions: HashMap<String, Session>,
    fresh: Box<dyn Fn() -> Session + Send>,
}

impl Tenants {
    fn session_mut(&mut self, name: &str) -> &mut Session {
        self.sessions.entry(name.to_string()).or_insert_with(&self.fresh)
    }
}

/// The wire name of logical session `k` — the id a protocol-v2 client
/// would put in the `session` field.
fn session_name(k: u32) -> String {
    format!("s{k}")
}

/// Pool request: apply one stream op to a named session, or report the
/// shard's per-session statistics.
enum Req {
    Apply(String, OpKind),
    Stats,
}

/// What one op did, for aggregation on the driving thread.
enum Resp {
    Admitted {
        accepted: bool,
        latency_ns: u64,
    },
    Released {
        degraded: bool,
        latency_ns: u64,
    },
    Queried {
        latency_ns: u64,
    },
    /// One entry per session alive on the shard (order is immaterial:
    /// the driver folds them commutatively).
    Stats(Vec<QueryStats>),
}

/// How long a profile keeps replaying rounds.
enum Stop {
    /// Exactly `rounds` rounds (deterministic).
    Rounds(u32),
    /// Rounds until the wall-clock deadline passes (soak; at least one).
    Deadline(Instant),
}

fn build_pool(config: &LoadConfig, obs: &Obs) -> ShardedPool<Req, Resp> {
    let columns = config.columns;
    let deterministic = config.deterministic;
    let cache = config.cache;
    let ctl_obs = obs.clone();
    ShardedPool::with_obs(
        PoolConfig { workers: config.workers, shards: config.sessions },
        obs.clone(),
        move |_shard| {
            let ctl_obs = ctl_obs.clone();
            Tenants {
                sessions: HashMap::new(),
                fresh: Box::new(move || Session {
                    controller: AdmissionController::with_obs(
                        Fpga::new(columns).expect("spec validation caught zero columns"),
                        ControllerConfig::default(),
                        ctl_obs.clone(),
                    )
                    .with_cache(cache),
                    live: VecDeque::new(),
                }),
            }
        },
        move |tenants, _shard, req| {
            let (name, kind) = match req {
                Req::Stats => {
                    return Resp::Stats(
                        tenants.sessions.values().map(|s| s.controller.stats()).collect(),
                    )
                }
                Req::Apply(name, kind) => (name, kind),
            };
            let session = tenants.session_mut(&name);
            let start = Instant::now();
            let mut resp = match kind {
                OpKind::Admit(params) => {
                    let task = params.to_task().expect("synthesized params validate");
                    let (decision, handle) = session.controller.admit(task, false);
                    if let Some(handle) = handle {
                        session.live.push_back(handle);
                    }
                    Resp::Admitted { accepted: decision.accepted, latency_ns: 0 }
                }
                OpKind::Release => match session.live.pop_front() {
                    Some(handle) => {
                        session.controller.release(handle).expect("handle is live by FIFO");
                        Resp::Released { degraded: false, latency_ns: 0 }
                    }
                    None => {
                        session.controller.query(false);
                        Resp::Released { degraded: true, latency_ns: 0 }
                    }
                },
                OpKind::Query => {
                    session.controller.query(false);
                    Resp::Queried { latency_ns: 0 }
                }
            };
            if !deterministic {
                let latency = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                match &mut resp {
                    Resp::Admitted { latency_ns, .. }
                    | Resp::Released { latency_ns, .. }
                    | Resp::Queried { latency_ns } => *latency_ns = latency,
                    Resp::Stats(_) => unreachable!("stats returned above"),
                }
            }
            resp
        },
    )
}

/// Replay one profile under the given stop rule and aggregate its report.
fn run_profile(
    profile: ArrivalProfile,
    config: &LoadConfig,
    stop: Stop,
    obs: &Obs,
) -> Result<ProfileReport, String> {
    config.spec(profile, 0).validate()?;
    let mut pool = build_pool(config, obs);
    let mut hist = LatencyHistogram::new();
    let (mut ops, mut admits, mut accepted, mut rejected) = (0u64, 0u64, 0u64, 0u64);
    let (mut releases, mut degraded_releases, mut queries) = (0u64, 0u64, 0u64);
    let mut round = 0u32;
    loop {
        match stop {
            Stop::Rounds(rounds) => {
                if round >= rounds {
                    break;
                }
            }
            Stop::Deadline(deadline) => {
                if round > 0 && Instant::now() >= deadline {
                    break;
                }
            }
        }
        let stream = synthesize(&config.spec(profile, round))?;
        let results = pool
            .run_batch(stream.into_iter().map(|op| {
                let name = session_name(op.session);
                let shard = session_shard(&name, config.sessions);
                (shard, Req::Apply(name, op.kind))
            }))
            .map_err(|e| e.to_string())?;
        for result in results {
            let resp = result.map_err(|p| p.to_string())?;
            ops += 1;
            let latency_ns = match resp {
                Resp::Admitted { accepted: ok, latency_ns } => {
                    admits += 1;
                    if ok {
                        accepted += 1;
                    } else {
                        rejected += 1;
                    }
                    latency_ns
                }
                Resp::Released { degraded, latency_ns } => {
                    if degraded {
                        degraded_releases += 1;
                    } else {
                        releases += 1;
                    }
                    latency_ns
                }
                Resp::Queried { latency_ns } => {
                    queries += 1;
                    latency_ns
                }
                Resp::Stats(_) => return Err("unexpected stats response".to_string()),
            };
            hist.record(latency_ns);
        }
        round += 1;
    }
    // Total the per-session controller statistics across every shard,
    // through the workspace's one cross-shard fold
    // (`QueryStats::fold_into`) — the fold is commutative sums, so the
    // session iteration order within a shard is immaterial. These queries
    // are bookkeeping, not stream ops — they stay out of the histogram and
    // the op counts.
    let acc = Registry::new();
    for result in pool.broadcast(|_| Req::Stats).map_err(|e| e.to_string())? {
        match result.map_err(|p| p.to_string())? {
            Resp::Stats(per_session) => {
                for stats in per_session {
                    stats.fold_into(&acc);
                }
            }
            _ => return Err("expected stats response".to_string()),
        }
    }
    let tiers_total = QueryStats::from_snapshot(&acc.snapshot());
    debug_assert_eq!(tiers_total.decisions, admits, "stats count exactly the admit decisions");
    if obs.enabled() {
        // Per-profile counters plus the run-wide admission totals. Each
        // profile drains its own fresh pool exactly once, so folding here
        // never double-counts.
        let prefix = format!("loadgen/{}", profile.as_str());
        obs.add(&format!("{prefix}/ops"), ops);
        obs.add(&format!("{prefix}/admits"), admits);
        obs.add(&format!("{prefix}/accepted"), accepted);
        obs.add(&format!("{prefix}/rejected"), rejected);
        obs.add(&format!("{prefix}/releases"), releases);
        obs.add(&format!("{prefix}/degraded_releases"), degraded_releases);
        obs.add(&format!("{prefix}/queries"), queries);
        obs.add(&format!("{prefix}/rounds"), u64::from(round));
        if let Some(registry) = obs.registry() {
            tiers_total.fold_into(registry);
        }
    }
    Ok(ProfileReport {
        profile: profile.as_str().to_string(),
        ops,
        admits,
        accepted,
        rejected,
        releases,
        degraded_releases,
        queries,
        tiers: tiers_total.tiers,
        latency: LatencySummary::from_histogram(&hist),
    })
}

/// Run the given profiles for the configured number of rounds each and
/// assemble the full report.
pub fn run(profiles: &[ArrivalProfile], config: &LoadConfig) -> Result<LoadReport, String> {
    run_with_obs(profiles, config, Obs::off()).map(|(report, _)| report)
}

/// [`run`] with a telemetry handle; additionally returns the run-wide
/// `fpga-rt-obs/1` snapshot — pool shard counters, cascade-tier latency
/// histograms (accumulated across profiles), per-profile
/// `loadgen/<profile>/*` counters, the folded admission totals and the run
/// configuration as metadata.
pub fn run_with_obs(
    profiles: &[ArrivalProfile],
    config: &LoadConfig,
    obs: Obs,
) -> Result<(LoadReport, Snapshot), String> {
    let mut reports = Vec::with_capacity(profiles.len());
    for &profile in profiles {
        reports.push(run_profile(profile, config, Stop::Rounds(config.rounds.max(1)), &obs)?);
    }
    let report = LoadReport {
        schema: SCHEMA.to_string(),
        runner: runner_id(),
        budget: config.budget(),
        profiles: reports,
    };
    Ok((report, loadgen_snapshot(&obs, config)))
}

/// The run-wide snapshot: the live registry (or a fresh one under
/// [`Obs::off`]) stamped with the run configuration. The worker count is
/// deliberately absent — deterministic snapshots must be byte-identical
/// across worker counts.
fn loadgen_snapshot(obs: &Obs, config: &LoadConfig) -> Snapshot {
    let registry = match obs.registry() {
        Some(shared) => (**shared).clone(),
        None => Registry::with_mode(config.deterministic),
    };
    registry.set_meta("mode", "loadgen");
    registry.set_meta("ops", &config.ops.to_string());
    registry.set_meta("sessions", &config.sessions.to_string());
    registry.set_meta("columns", &config.columns.to_string());
    registry.set_meta("rounds", &config.rounds.max(1).to_string());
    registry.set_meta("seed", &config.seed.to_string());
    registry.set_meta("deterministic", if config.deterministic { "true" } else { "false" });
    // Hit-rate gauge from the merged cache counters (gauges merge by sum,
    // so this must be written exactly once, here).
    let snap = registry.snapshot();
    let hits = snap.counter(cache_counters::CACHE_HITS).unwrap_or(0);
    let misses = snap.counter(cache_counters::CACHE_MISSES).unwrap_or(0);
    if let Some(rate) = (hits * 1000).checked_div(hits + misses) {
        registry.set_gauge(cache_counters::CACHE_HIT_RATE_PERMILLE, rate);
        return registry.snapshot();
    }
    snap
}

/// Soak mode: keep replaying rounds of every profile until `secs` seconds
/// of wall clock have elapsed (the budget is split evenly across profiles;
/// each profile runs at least one round). Incompatible with
/// `deterministic` — a wall-clock stop rule makes the round count, and so
/// the artifact, timing-dependent.
pub fn run_soak(
    profiles: &[ArrivalProfile],
    config: &LoadConfig,
    secs: u64,
) -> Result<LoadReport, String> {
    run_soak_with_obs(profiles, config, secs, Obs::off()).map(|(report, _)| report)
}

/// [`run_soak`] with a telemetry handle; see [`run_with_obs`] for the
/// snapshot contents.
pub fn run_soak_with_obs(
    profiles: &[ArrivalProfile],
    config: &LoadConfig,
    secs: u64,
    obs: Obs,
) -> Result<(LoadReport, Snapshot), String> {
    if config.deterministic {
        return Err("--soak is wall-clock-bounded and cannot be --deterministic; \
                    use --rounds for long deterministic runs"
            .to_string());
    }
    if profiles.is_empty() {
        return Err("no profiles selected".to_string());
    }
    let per_profile = Duration::from_secs(secs) / profiles.len() as u32;
    let mut reports = Vec::with_capacity(profiles.len());
    for &profile in profiles {
        let deadline = Instant::now() + per_profile;
        reports.push(run_profile(profile, config, Stop::Deadline(deadline), &obs)?);
    }
    let report = LoadReport {
        schema: SCHEMA.to_string(),
        runner: runner_id(),
        budget: config.budget(),
        profiles: reports,
    };
    Ok((report, loadgen_snapshot(&obs, config)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(deterministic: bool, workers: usize) -> LoadConfig {
        LoadConfig {
            ops: 600,
            sessions: 8,
            columns: 100,
            seed: 11,
            workers,
            rounds: 2,
            deterministic,
            cache: Some(1024),
        }
    }

    #[test]
    fn deterministic_reports_are_byte_identical_across_worker_counts() {
        let all = ArrivalProfile::all();
        let reference = run(&all, &small_config(true, 1)).unwrap();
        for workers in [2, 4, 7] {
            let other = run(&all, &small_config(true, workers)).unwrap();
            assert_eq!(other.render_json(), reference.render_json(), "workers={workers}");
            assert_eq!(other.render_csv(), reference.render_csv(), "workers={workers}");
            assert_eq!(other.render_text(), reference.render_text(), "workers={workers}");
        }
    }

    /// The cache contract at loadgen scale: deterministic artifacts are
    /// byte-identical with the cache on or off (the CI cache-smoke gate
    /// diffs exactly this), and the resubmission-heavy streams drive a
    /// non-trivial hit rate into the obs snapshot.
    #[test]
    fn cache_on_off_artifacts_are_byte_identical() {
        let all = ArrivalProfile::all();
        let on = run(&all, &small_config(true, 2)).unwrap();
        let off = run(&all, &LoadConfig { cache: None, ..small_config(true, 2) }).unwrap();
        assert_eq!(on.render_json(), off.render_json());
        assert_eq!(on.render_csv(), off.render_csv());
        assert_eq!(on.render_text(), off.render_text());

        let (_, snap) = run_with_obs(&all, &small_config(true, 2), Obs::on(true)).unwrap();
        let hits = snap.counter(cache_counters::CACHE_HITS).unwrap_or(0);
        assert!(hits > 0, "adversarial resubmission cycles must hit the cache");
        assert_eq!(snap.gauge(cache_counters::CACHE_HIT_RATE_PERMILLE).map(|p| p > 0), Some(true));
    }

    #[test]
    fn deterministic_latencies_are_all_zero() {
        let report = run(&[ArrivalProfile::Poisson], &small_config(true, 3)).unwrap();
        let latency = report.profiles[0].latency;
        assert_eq!(latency, LatencySummary::default());
    }

    #[test]
    fn op_counts_are_consistent() {
        let config = small_config(true, 2);
        let report = run(&ArrivalProfile::all(), &config).unwrap();
        assert_eq!(report.profiles.len(), 3);
        for p in &report.profiles {
            assert_eq!(p.ops, (config.ops as u64) * u64::from(config.rounds), "{}", p.profile);
            assert_eq!(
                p.admits + p.releases + p.degraded_releases + p.queries,
                p.ops,
                "{}",
                p.profile
            );
            assert_eq!(p.admits, p.accepted + p.rejected, "{}", p.profile);
            assert_eq!(p.tiers.total(), p.admits, "{}: every admit settles in one tier", p.profile);
        }
    }

    #[test]
    fn adversarial_profile_reaches_the_exact_tier() {
        let report = run(&[ArrivalProfile::Adversarial], &small_config(true, 2)).unwrap();
        let p = &report.profiles[0];
        assert!(p.tiers.exact > 0, "knife-edge admissions must escalate: {:?}", p.tiers);
    }

    #[test]
    fn non_deterministic_runs_measure_latency() {
        let config = LoadConfig { rounds: 1, ..small_config(false, 2) };
        let report = run(&[ArrivalProfile::Poisson], &config).unwrap();
        let latency = report.profiles[0].latency;
        assert!(latency.max_ns > 0, "real runs record wall time: {latency:?}");
        assert!(latency.p50_ns <= latency.p99_ns);
        assert!(latency.p99_ns <= latency.p999_ns);
        assert!(latency.p999_ns <= latency.max_ns);
    }

    #[test]
    fn obs_snapshot_is_invariant_in_workers_and_matches_report_tiers() {
        let render = |workers: usize| {
            let (report, snapshot) = run_with_obs(
                &[ArrivalProfile::Adversarial],
                &small_config(true, workers),
                Obs::on(true),
            )
            .unwrap();
            (report.render_json(), snapshot.render_json(), snapshot.render_text())
        };
        let reference = render(1);
        for workers in [2, 4] {
            assert_eq!(render(workers), reference, "workers={workers}");
        }
        let snapshot: Snapshot = serde_json::from_str(&reference.1).unwrap();
        assert!(snapshot.deterministic);
        let (report, _) =
            run_with_obs(&[ArrivalProfile::Adversarial], &small_config(true, 2), Obs::on(true))
                .unwrap();
        let p = &report.profiles[0];
        assert_eq!(snapshot.counter("admission/decisions"), Some(p.admits));
        assert_eq!(snapshot.counter("loadgen/adversarial/ops"), Some(p.ops));
        // Every settled tier leaves a per-decision latency histogram whose
        // count is exactly that tier's decision count (zero-valued samples
        // in deterministic mode). The adversarial profile is knife-edge
        // heavy, so the exact tier must be populated.
        assert!(p.tiers.exact > 0, "adversarial load reaches the exact tier");
        for (tier, count) in [
            ("dp-inc", p.tiers.dp_inc),
            ("gn1", p.tiers.gn1),
            ("gn2", p.tiers.gn2),
            ("exact", p.tiers.exact),
        ] {
            let hist = snapshot.histogram(&format!("admission/tier/{tier}/decision_ns"));
            assert_eq!(hist.map(|h| h.count).unwrap_or(0), count, "{tier}");
        }
        let depth = snapshot.histogram("admission/cascade_depth").unwrap();
        assert_eq!(depth.count, p.admits, "every decision records its cascade depth");
    }

    #[test]
    fn soak_refuses_deterministic_mode() {
        let err = run_soak(&ArrivalProfile::all(), &small_config(true, 1), 1).unwrap_err();
        assert!(err.contains("--soak"), "{err}");
    }

    #[test]
    fn soak_runs_at_least_one_round_per_profile() {
        let config = LoadConfig { ops: 50, ..small_config(false, 2) };
        let report =
            run_soak(&[ArrivalProfile::Poisson, ArrivalProfile::Bursty], &config, 0).unwrap();
        assert_eq!(report.profiles.len(), 2);
        for p in &report.profiles {
            assert!(p.ops >= 50, "{}: at least one round", p.profile);
        }
    }
}
