//! Socket client mode: drive a running `fpga-rt serve --listen` process
//! over many concurrent TCP or Unix-socket connections and verify the
//! transport's ordering contract from the outside.
//!
//! Unlike the in-process replay modes ([`mod@crate::run`]), this module
//! speaks the wire protocol through [`ClientStream`] exactly as a tenant
//! would: each connection opens its own protocol session (`c0`, `c1`, …),
//! ping-pongs `create` → data ops → `destroy`, and checks every response
//! against the two per-connection invariants the transport promises —
//! the `id` echo matches the request just sent, and `seq` increments
//! strictly from 0. A missing response is **dropped**; an echo on the
//! wrong request is **reordered**; either makes the run unclean and the
//! CLI exits nonzero, which is what the CI `socket-smoke` job gates on
//! at ~200 concurrent connections.

use crate::hist::LatencyHistogram;
use crate::report::LatencySummary;
use fpga_rt_service::{ClientStream, Endpoint};
use std::io::{BufRead, BufReader, Write};
use std::time::{Duration, Instant};

/// Parameters of one socket load run.
#[derive(Debug, Clone)]
pub struct SocketLoadConfig {
    /// Concurrent connections (each runs on its own thread and owns one
    /// protocol session).
    pub conns: usize,
    /// Data ops per connection, between the `create`/`destroy` pair —
    /// every connection sends `requests + 2` lines in total.
    pub requests: usize,
    /// How long each connection keeps retrying its initial connect (the
    /// server may still be binding when the swarm starts).
    pub connect_timeout: Duration,
}

impl Default for SocketLoadConfig {
    fn default() -> Self {
        SocketLoadConfig { conns: 16, requests: 32, connect_timeout: Duration::from_secs(5) }
    }
}

/// Outcome of a socket load run, aggregated over all connections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocketLoadReport {
    /// Connections that completed their script (connect through EOF).
    pub conns: usize,
    /// Request lines sent.
    pub sent: usize,
    /// Response lines received.
    pub received: usize,
    /// Requests that never got a response (connection closed early).
    pub dropped: usize,
    /// Responses whose `id` or `seq` did not match the request just
    /// sent — the transport's per-connection ordering contract broken.
    pub reordered: usize,
    /// Well-ordered responses that carried `"ok":false` (protocol-level
    /// errors; zero on a healthy server).
    pub errors: usize,
    /// Ping-pong round-trip latency over all connections.
    pub latency: LatencySummary,
}

impl SocketLoadReport {
    /// A clean run: every request answered, in order.
    pub fn clean(&self) -> bool {
        self.dropped == 0 && self.reordered == 0
    }

    /// One-paragraph text rendering for stdout.
    pub fn render_text(&self) -> String {
        format!(
            "socket load: {} conns, {} sent, {} received, {} dropped, {} reordered, {} errors\n\
             round-trip latency: p50 {}ns p99 {}ns p999 {}ns max {}ns\n",
            self.conns,
            self.sent,
            self.received,
            self.dropped,
            self.reordered,
            self.errors,
            self.latency.p50_ns,
            self.latency.p99_ns,
            self.latency.p999_ns,
            self.latency.max_ns,
        )
    }
}

/// What one connection's thread brings home.
struct ConnOutcome {
    sent: usize,
    received: usize,
    reordered: usize,
    errors: usize,
    hist: LatencyHistogram,
}

/// The scripted request lines of connection `index`: `create`, then
/// `requests` admit/query data ops, then `destroy` — all carrying
/// explicit ids so the echo can be verified.
fn script(index: usize, requests: usize) -> Vec<String> {
    let session = format!("c{index}");
    let mut lines = Vec::with_capacity(requests + 2);
    lines.push(format!(r#"{{"id":"{session}-0","session":"{session}","op":"create"}}"#));
    for k in 0..requests {
        let seq = k + 1;
        let id = format!("{session}-{seq}");
        // Alternate a real admission with a read-only query so the run
        // exercises state mutation, not just echo plumbing. Periods vary
        // with k to keep the taskset growing admissibly slowly.
        let line = if k % 2 == 0 {
            let period = 40.0 + (k % 7) as f64;
            format!(
                r#"{{"id":"{id}","session":"{session}","op":"admit","task":{{"exec":0.01,"deadline":{period:.1},"period":{period:.1},"area":1}}}}"#
            )
        } else {
            format!(r#"{{"id":"{id}","session":"{session}","op":"query"}}"#)
        };
        lines.push(line);
    }
    lines.push(format!(
        r#"{{"id":"{session}-{}","session":"{session}","op":"destroy"}}"#,
        requests + 1
    ));
    lines
}

/// Extract a string or integer field from a response line without a full
/// JSON parse — `"key":value` with the protocol's canonical rendering
/// (no spaces). Good enough for the echo check; a malformed line simply
/// fails to match and counts as reordered.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        Some(rest.split([',', '}']).next().unwrap_or(""))
    }
}

/// Run one connection's ping-pong script against `endpoint`.
fn drive_conn(
    endpoint: &Endpoint,
    index: usize,
    config: &SocketLoadConfig,
) -> Result<ConnOutcome, String> {
    let stream = ClientStream::connect_with_retry(endpoint, config.connect_timeout)
        .map_err(|e| format!("conn {index}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("conn {index}: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut outcome = ConnOutcome {
        sent: 0,
        received: 0,
        reordered: 0,
        errors: 0,
        hist: LatencyHistogram::new(),
    };
    let session = format!("c{index}");
    for (seq, line) in script(index, config.requests).into_iter().enumerate() {
        writer.write_all(line.as_bytes()).map_err(|e| format!("conn {index} send: {e}"))?;
        writer.write_all(b"\n").map_err(|e| format!("conn {index} send: {e}"))?;
        writer.flush().map_err(|e| format!("conn {index} send: {e}"))?;
        outcome.sent += 1;
        let start = Instant::now();
        let mut response = String::new();
        let n = reader.read_line(&mut response).map_err(|e| format!("conn {index} recv: {e}"))?;
        if n == 0 {
            // Server hung up mid-script: the unanswered requests are
            // dropped; the caller turns that into an unclean run.
            break;
        }
        outcome.hist.record(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        outcome.received += 1;
        let expected_id = format!("{session}-{seq}");
        let in_order = field(&response, "id") == Some(expected_id.as_str())
            && field(&response, "seq") == Some(seq.to_string().as_str());
        if !in_order {
            outcome.reordered += 1;
        } else if field(&response, "ok") != Some("true") {
            outcome.errors += 1;
        }
    }
    writer.shutdown_write().map_err(|e| format!("conn {index} half-close: {e}"))?;
    // Drain to EOF so the server's close is observed, not raced.
    let mut tail = String::new();
    let _ = std::io::Read::read_to_string(&mut reader, &mut tail);
    outcome.received += tail.lines().count();
    Ok(outcome)
}

/// Fan `config.conns` scripted connections out against a running
/// listener, one thread each, and aggregate the outcome. Errors only on
/// harness-level failures (connect/send); protocol-level trouble is
/// reported in the counts so the caller can render before failing.
pub fn run_socket(
    endpoint: &Endpoint,
    config: &SocketLoadConfig,
) -> Result<SocketLoadReport, String> {
    if config.conns == 0 {
        return Err("socket load needs at least one connection".into());
    }
    if matches!(endpoint, Endpoint::Stdio) {
        return Err(
            "socket load needs a socket endpoint (`tcp://HOST:PORT` or `unix://PATH`)".into()
        );
    }
    let workers: Vec<std::thread::JoinHandle<Result<ConnOutcome, String>>> = (0..config.conns)
        .map(|index| {
            let endpoint = endpoint.clone();
            let config = config.clone();
            std::thread::spawn(move || drive_conn(&endpoint, index, &config))
        })
        .collect();
    let mut report = SocketLoadReport {
        conns: 0,
        sent: 0,
        received: 0,
        dropped: 0,
        reordered: 0,
        errors: 0,
        latency: LatencySummary::default(),
    };
    let mut hist = LatencyHistogram::new();
    let mut failures = Vec::new();
    for worker in workers {
        match worker.join().map_err(|_| "connection thread panicked".to_string())? {
            Ok(outcome) => {
                report.conns += 1;
                report.sent += outcome.sent;
                report.received += outcome.received;
                report.reordered += outcome.reordered;
                report.errors += outcome.errors;
                hist.merge(&outcome.hist);
            }
            Err(e) => failures.push(e),
        }
    }
    if let Some(first) = failures.first() {
        return Err(format!(
            "{} of {} connections failed; first: {first}",
            failures.len(),
            config.conns
        ));
    }
    report.dropped = report.sent.saturating_sub(report.received);
    report.latency = LatencySummary::from_histogram(&hist);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_rt_obs::Obs;
    use fpga_rt_service::{ServeConfig, SocketServer, TransportConfig};

    #[test]
    fn the_script_ids_track_the_per_connection_sequence() {
        let lines = script(3, 4);
        assert_eq!(lines.len(), 6);
        assert!(lines[0].contains(r#""id":"c3-0""#) && lines[0].contains(r#""op":"create""#));
        assert!(lines[5].contains(r#""id":"c3-5""#) && lines[5].contains(r#""op":"destroy""#));
        for (seq, line) in lines.iter().enumerate() {
            assert!(line.contains(&format!(r#""id":"c3-{seq}""#)), "{line}");
        }
    }

    #[test]
    fn field_extraction_reads_the_canonical_rendering() {
        let line = r#"{"ok":true,"seq":12,"id":"c1-12","session":"c1"}"#;
        assert_eq!(field(line, "id"), Some("c1-12"));
        assert_eq!(field(line, "seq"), Some("12"));
        assert_eq!(field(line, "ok"), Some("true"));
        assert_eq!(field(line, "missing"), None);
    }

    #[test]
    fn a_connection_swarm_sees_zero_dropped_or_reordered_responses() {
        let conns = 16;
        let transport = TransportConfig { max_conns: Some(conns), ..TransportConfig::default() };
        let server =
            SocketServer::bind(&Endpoint::Tcp("127.0.0.1:0".into()), transport).expect("bind");
        let endpoint = server.local_endpoint();
        let serve_config = ServeConfig { shards: 4, workers: 2, batch: 16, ..ServeConfig::new(64) };
        let handle = std::thread::spawn(move || server.serve(&serve_config, Obs::off()));
        let config = SocketLoadConfig { conns, requests: 8, ..SocketLoadConfig::default() };
        let report = run_socket(&endpoint, &config).expect("socket load");
        let (stats, _) = handle.join().expect("server thread").expect("serve");
        assert!(report.clean(), "{report:?}");
        assert_eq!(report.conns, conns);
        assert_eq!(report.sent, conns * 10, "create + 8 ops + destroy per conn");
        assert_eq!(report.received, report.sent);
        assert_eq!(report.errors, 0, "{report:?}");
        assert_eq!(stats.requests, (conns * 10) as u64);
    }
}
