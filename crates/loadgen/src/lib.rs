//! # fpga-rt-loadgen
//!
//! A traffic-shaped load generator for the admission-control service: the
//! workspace's answer to "how does the analysis cascade behave under
//! sustained arrival streams?", and the producer of the end-to-end latency
//! baselines (`BENCH_6.json`) that `scripts/bench_gate.py` turns into a CI
//! regression gate.
//!
//! The pipeline has three stages, one module each:
//!
//! 1. [`profile`] — **synthesize** a deterministic, seedable stream of
//!    admit/release/query ops multiplexed over many logical sessions.
//!    Three traffic shapes: `poisson` (memoryless open-loop arrivals with
//!    UUniFast-shaped admissions), `bursty` (on/off bursts on hot
//!    sessions), and `adversarial` (the paper's Table 1 knife-edge pair
//!    scaled to the device, forcing the controller's exact `Rat64` tier on
//!    every second admission).
//! 2. [`run()`] — **replay** the stream against in-process
//!    [`AdmissionController`](fpga_rt_service::AdmissionController)s, one
//!    per **named protocol session** (`s0`, `s1`, …), placed onto the
//!    workspace's deterministic
//!    [`ShardedPool`](fpga_rt_pool::ShardedPool) by the same
//!    [`session_shard`](fpga_rt_service::session_shard) FNV-1a hash the
//!    multi-tenant server routes v2 `session` ids with. Per-op latencies
//!    land in
//!    the workspace's HDR-style [`hist::LatencyHistogram`] (promoted to
//!    `fpga-rt-obs` and re-exported here); decision and tier counts ride
//!    the shared `fpga-rt-obs` registry snapshot.
//! 3. [`report`] — **emit** the artifact: JSON
//!    (schema `fpga-rt-loadgen-smoke/1`), CSV, and a stdout table, all
//!    byte-identical across `--workers` under `--deterministic` (zeroed
//!    latencies) — the same determinism contract as sweep and conform.
//!
//! A fourth, out-of-process mode — [`socket`] — speaks the wire protocol
//! through real TCP / Unix-socket connections against a running
//! `fpga-rt serve --listen` process, verifying the transport's
//! per-connection ordering contract (id echo, strictly incrementing
//! `seq`) across hundreds of concurrent connections.
//!
//! The `fpga-rt loadgen` CLI subcommand wraps [`run::run`] /
//! [`run::run_soak`] (and [`socket::run_socket`] under `--target`); see
//! the workspace README's *Loadgen mode* section.
//!
//! ## Example
//!
//! ```
//! use fpga_rt_loadgen::{run, ArrivalProfile, LoadConfig};
//!
//! let config = LoadConfig { ops: 200, sessions: 4, deterministic: true, ..LoadConfig::default() };
//! let report = run(&[ArrivalProfile::Adversarial], &config)?;
//! let p = &report.profiles[0];
//! assert_eq!(p.ops, 200);
//! // Knife-edge admissions escalate all the way to the exact tier.
//! assert!(p.tiers.exact > 0);
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fpga_rt_obs::hist;

pub mod profile;
pub mod report;
pub mod run;
pub mod socket;

pub use fpga_rt_obs::LatencyHistogram;
pub use profile::{synthesize, ArrivalOp, ArrivalProfile, LoadSpec, OpKind};
pub use report::{runner_id, Budget, LatencySummary, LoadReport, ProfileReport, SCHEMA};
pub use run::{run, run_soak, run_soak_with_obs, run_with_obs, LoadConfig};
pub use socket::{run_socket, SocketLoadConfig, SocketLoadReport};
