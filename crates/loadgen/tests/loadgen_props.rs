//! Property tests for the load generator: stream synthesis is a pure
//! function of the spec, arrival times are sorted sums of non-negative
//! gaps, and the latency histogram's quantiles are exact on
//! exactly-representable inputs.

use fpga_rt_loadgen::{synthesize, ArrivalProfile, LatencyHistogram, LoadSpec, OpKind};
use proptest::prelude::*;

fn any_profile() -> impl Strategy<Value = ArrivalProfile> {
    (0u32..3).prop_map(|i| match i {
        0 => ArrivalProfile::Poisson,
        1 => ArrivalProfile::Bursty,
        _ => ArrivalProfile::Adversarial,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same spec ⇒ byte-identical stream, whatever the profile and seed.
    #[test]
    fn streams_are_deterministic_per_seed(
        profile in any_profile(),
        seed in 0u64..1_000_000,
        ops in 1usize..400,
        sessions in 1u32..32,
    ) {
        let spec = LoadSpec { profile, ops, sessions, columns: 100, seed };
        let a = synthesize(&spec).unwrap();
        let b = synthesize(&spec).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Arrival times are non-decreasing (cumulative non-negative gaps),
    /// the stream has exactly `ops` entries, sessions stay in range, and
    /// every admitted candidate validates into a model task.
    #[test]
    fn streams_are_sorted_and_well_formed(
        profile in any_profile(),
        seed in 0u64..1_000_000,
        ops in 1usize..400,
        sessions in 1u32..32,
    ) {
        let spec = LoadSpec { profile, ops, sessions, columns: 100, seed };
        let stream = synthesize(&spec).unwrap();
        prop_assert_eq!(stream.len(), ops);
        for pair in stream.windows(2) {
            prop_assert!(pair[1].at_ns >= pair[0].at_ns, "gap must be non-negative");
        }
        for op in &stream {
            prop_assert!(op.session < sessions);
            if let OpKind::Admit(params) = &op.kind {
                let task = params.to_task();
                prop_assert!(task.is_ok(), "invalid admit params: {:?}", params);
                prop_assert!(task.unwrap().area() <= 100);
            }
        }
    }

    /// Values below the exact limit (64) land in unit buckets, so any
    /// quantile of such a sample set is *exactly* the rank-selected sample:
    /// the histogram agrees with a sorted-vector oracle.
    #[test]
    fn quantiles_match_sorted_oracle_on_exact_values(
        mut samples in collection::vec(0u64..64, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let mut hist = LatencyHistogram::new();
        for &v in &samples {
            hist.record(v);
        }
        samples.sort_unstable();
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        prop_assert_eq!(hist.quantile(q), Some(samples[rank - 1]));
        prop_assert_eq!(hist.max(), *samples.last().unwrap());
        prop_assert_eq!(hist.count(), samples.len() as u64);
    }

    /// For arbitrary u64 samples the quantile is a lower bound within the
    /// documented 1/32 relative quantization error.
    #[test]
    fn quantiles_are_lower_bounds_within_error(
        mut samples in collection::vec(0u64..1_000_000_000, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let mut hist = LatencyHistogram::new();
        for &v in &samples {
            hist.record(v);
        }
        samples.sort_unstable();
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        let exact = samples[rank - 1];
        let reported = hist.quantile(q).unwrap();
        prop_assert!(reported <= exact);
        prop_assert!(
            (exact - reported) as f64 <= (exact as f64) / 32.0 + 1.0,
            "reported {reported} too far below exact {exact}"
        );
    }

    /// Histogram merge is associative and order-insensitive — the property
    /// the telemetry registry leans on when per-shard histograms are folded
    /// into one snapshot in whatever order shards drain — and the merged
    /// population agrees with a sorted-vector oracle on count, max, and
    /// (within the 1/32 quantization error) the median.
    #[test]
    fn histogram_merge_is_associative_against_sorted_oracle(
        a in collection::vec(0u64..1_000_000, 0..80),
        b in collection::vec(0u64..1_000_000, 0..80),
        c in collection::vec(0u64..1_000_000, 0..80),
    ) {
        let build = |s: &[u64]| {
            let mut h = LatencyHistogram::new();
            for &v in s {
                h.record(v);
            }
            h
        };
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));
        let mut left = ha.clone(); // (a ⊕ b) ⊕ c
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone(); // a ⊕ (b ⊕ c)
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        let mut rev = hc.clone(); // c ⊕ b ⊕ a
        rev.merge(&hb);
        rev.merge(&ha);
        prop_assert_eq!(&left, &rev);

        let mut all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(left.count(), all.len() as u64);
        if let Some(&exact_max) = all.last() {
            prop_assert_eq!(left.max(), exact_max);
            let rank = ((0.5 * all.len() as f64).ceil() as usize).clamp(1, all.len());
            let exact = all[rank - 1];
            let reported = left.quantile(0.5).unwrap();
            prop_assert!(reported <= exact);
            prop_assert!(
                (exact - reported) as f64 <= exact as f64 / 32.0 + 1.0,
                "median {reported} too far below exact {exact}"
            );
        }
    }

    /// Folding per-shard registries into an accumulator yields the same
    /// snapshot whatever order the shards drain in — the determinism
    /// contract behind byte-identical `--metrics-out` artifacts across
    /// `--workers`.
    #[test]
    fn registry_snapshot_is_merge_order_invariant(
        shards in collection::vec(collection::vec((0usize..4, 0u64..1_000_000), 0..24), 1..6),
        deterministic in (0u32..2).prop_map(|b| b == 1),
    ) {
        use fpga_rt_obs::Registry;
        const NAMES: [&str; 4] = ["t/ops", "t/queue_depth", "t/cascade", "t/wait_ns"];
        let build = |ops: &[(usize, u64)]| {
            let r = Registry::with_mode(deterministic);
            for &(which, v) in ops {
                match which {
                    0 => r.add(NAMES[0], v),
                    1 => r.set_gauge(NAMES[1], v),
                    2 => r.record(NAMES[2], v),
                    _ => r.record_ns(NAMES[3], v),
                }
            }
            r
        };
        let registries: Vec<Registry> = shards.iter().map(|s| build(s)).collect();
        let forward = Registry::with_mode(deterministic);
        for r in &registries {
            forward.merge_from(r);
        }
        let backward = Registry::with_mode(deterministic);
        for r in registries.iter().rev() {
            backward.merge_from(r);
        }
        let (a, b) = (forward.snapshot(), backward.snapshot());
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.render_json(), b.render_json());
        prop_assert_eq!(a.render_text(), b.render_text());
        if deterministic {
            // Time-valued samples were zeroed at the recording site.
            if let Some(h) = a.histogram(NAMES[3]) {
                prop_assert_eq!(h.max, 0);
            }
        }
    }

    /// Merging two histograms is equivalent to recording the concatenation.
    #[test]
    fn merge_equals_concatenation(
        a in collection::vec(0u64..1_000_000, 0..100),
        b in collection::vec(0u64..1_000_000, 0..100),
    ) {
        let mut ha = LatencyHistogram::new();
        for &v in &a {
            ha.record(v);
        }
        let mut hb = LatencyHistogram::new();
        for &v in &b {
            hb.record(v);
        }
        let mut hc = LatencyHistogram::new();
        for &v in a.iter().chain(&b) {
            hc.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha, hc);
    }
}

/// Empty and single-sample histograms, pinned outside proptest so the
/// hand-computed expectations stay explicit.
#[test]
fn empty_and_single_sample_quantiles() {
    let empty = LatencyHistogram::new();
    assert_eq!(empty.quantile(0.5), None);
    assert_eq!(empty.mean(), None);

    let mut one = LatencyHistogram::new();
    one.record(37);
    for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
        assert_eq!(one.quantile(q), Some(37), "q={q}");
    }
}
