//! Library backing the `fpga-rt` command-line tool (kept as a library so
//! every subcommand is unit-testable without spawning processes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod args;
pub mod commands;
pub mod io;

use fpga_rt_exp::cli::Args;
use std::io::Write;

/// Process exit semantics of the tool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExitCode {
    /// Verdict was "accepted" / simulation clean (exit 0).
    Accepted,
    /// Verdict was "rejected" / simulation missed (exit 1).
    Rejected,
    /// Usage or input error (exit 2) with a message.
    Error(String),
}

/// Dispatch a full command line (already split, without the binary name).
pub fn run(args: &[String], out: &mut dyn Write) -> ExitCode {
    let Some((cmd, rest)) = args.split_first() else {
        return ExitCode::Error(usage());
    };
    let parsed = Args::from_args(rest.iter().cloned());
    let result = match cmd.as_str() {
        "check" => commands::check(&parsed, out),
        "simulate" => commands::simulate(&parsed, out),
        "size" => commands::size(&parsed, out),
        "generate" => commands::generate(&parsed, out),
        "tables" => commands::tables(out),
        "sweep" => commands::sweep(&parsed, out),
        "conform" => commands::conform(&parsed, out),
        "serve" => commands::serve(&parsed, out),
        "client" => commands::client(&parsed, out),
        "loadgen" => commands::loadgen(&parsed, out),
        "help" | "--help" | "-h" => {
            let _ = writeln!(out, "{}", usage());
            Ok(ExitCode::Accepted)
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    };
    match result {
        Ok(code) => code,
        Err(msg) => ExitCode::Error(msg),
    }
}

/// One-screen usage text.
pub fn usage() -> String {
    "usage: fpga-rt <command> [flags]\n\
     commands:\n\
     \x20 check     --taskset FILE --columns N [--test any|dp|gn1|gn2|nec] [--exact] [--verbose]\n\
     \x20 simulate  --taskset FILE --columns N [--scheduler nf|fkf] [--horizon P]\n\
     \x20           [--placement free|first-fit|best-fit|worst-fit] [--overhead-per-column X] [--trace]\n\
     \x20 size      --taskset FILE [--max N] [--exact]\n\
     \x20 generate  --n N [--seed S] [--figure fig3a|fig3b|fig4a|fig4b] [--pretty]\n\
     \x20 tables    (reproduce the paper's Tables 1-3)\n\
     \x20 sweep     [--figure fig3a|fig3b|fig4a|fig4b] [--bins N] [--per-bin M]\n\
     \x20           [--workers W] [--seed S] [--out FILE.json|FILE.csv]\n\
     \x20           [--deterministic] [--metrics-out FILE.json|FILE.txt]\n\
     \x20           (parallel DP/GN1/GN2/AnyOf acceptance-ratio curves;\n\
     \x20           output is byte-identical for any --workers)\n\
     \x20 conform   [--figure fig3a|fig3b|fig4a|fig4b|all] [--bins N] [--per-bin M]\n\
     \x20           [--sim-horizon F] [--workers W] [--seed S] [--out FILE.json|FILE.csv]\n\
     \x20           [--deterministic] [--metrics-out FILE.json|FILE.txt]\n\
     \x20           [--twod [--samples N]]\n\
     \x20           (cross-validate DP/GN1/GN2/AnyOf against the simulator;\n\
     \x20           exit 1 on any SOUNDNESS-VIOLATION; byte-identical for any --workers)\n\
     \x20 serve     --columns N [--shards K] [--workers W] [--batch B]\n\
     \x20           [--sessions MAX] [--cache ENTRIES|off] [--exact-margin EPS]\n\
     \x20           [--listen stdio|tcp://HOST:PORT|unix://PATH] [--conns MAX]\n\
     \x20           [--input FILE] [--deterministic]\n\
     \x20           [--metrics-out FILE.json|FILE.txt]\n\
     \x20           (multi-tenant JSONL admission-control service; the default\n\
     \x20           stdio listener reads stdin/stdout, socket listeners serve\n\
     \x20           many concurrent connections byte-identically; v2 requests\n\
     \x20           carry a `session` id with create/pause/resume/snapshot/\n\
     \x20           restore/destroy lifecycle ops, v1 sessionless requests hit\n\
     \x20           the `default` session)\n\
     \x20 client    --connect tcp://HOST:PORT|unix://PATH [--input FILE]\n\
     \x20           (stream JSONL requests to a serve listener, half-close,\n\
     \x20           and print the response transcript to stdout)\n\
     \x20 loadgen   [--profile poisson|bursty|adversarial|all] [--ops N] [--sessions K]\n\
     \x20           [--columns N] [--rounds R] [--workers W] [--seed S] [--soak SECS]\n\
     \x20           [--deterministic] [--out FILE.json|FILE.csv]\n\
     \x20           [--metrics-out FILE.json|FILE.txt]\n\
     \x20           [--target tcp://HOST:PORT|unix://PATH [--conns N] [--requests M]]\n\
     \x20           (traffic-shaped load generator with p50/p99/p999 latency\n\
     \x20           histograms; --deterministic output is byte-identical for\n\
     \x20           any --workers; --metrics-out exports the fpga-rt-obs/1\n\
     \x20           telemetry snapshot, available on sweep/conform/serve too;\n\
     \x20           --target switches to the socket client mode, driving a\n\
     \x20           running serve listener over N concurrent connections and\n\
     \x20           exiting nonzero on any dropped or reordered response)"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(line: &[&str]) -> (ExitCode, String) {
        let args: Vec<String> = line.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        let code = run(&args, &mut buf);
        (code, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn no_args_is_error_with_usage() {
        let (code, _) = run_str(&[]);
        assert!(matches!(code, ExitCode::Error(msg) if msg.contains("usage")));
    }

    #[test]
    fn unknown_command_is_error() {
        let (code, _) = run_str(&["frobnicate"]);
        assert!(matches!(code, ExitCode::Error(_)));
    }

    #[test]
    fn help_prints_usage() {
        let (code, out) = run_str(&["help"]);
        assert_eq!(code, ExitCode::Accepted);
        assert!(out.contains("simulate"));
    }

    #[test]
    fn tables_runs() {
        let (code, out) = run_str(&["tables"]);
        assert_eq!(code, ExitCode::Accepted);
        assert!(out.contains("Table 3"));
        assert!(out.contains("accept"));
    }
}
