//! Subcommand implementations.

use crate::io::{device_from, taskset_from};
use crate::ExitCode;
use fpga_rt_analysis::{AnyOfTest, DpTest, Gn1Test, Gn2Test, NecessaryTest, SchedTest, TestReport};
use fpga_rt_exp::cli::Args;
use fpga_rt_gen::{FigureWorkload, TasksetSpec};
use fpga_rt_model::{Fpga, Rat64, TaskSet};
use fpga_rt_sim::{
    simulate_f64, FitStrategy, Horizon, PlacementPolicy, ReconfigOverhead, SchedulerKind, SimConfig,
};
use std::io::Write;

type CmdResult = Result<ExitCode, String>;

fn report_line(out: &mut dyn Write, rep: &TestReport, verbose: bool) {
    if verbose {
        let _ = write!(out, "{}", rep.summarize());
    } else {
        let _ =
            writeln!(out, "{:<12} {}", rep.test, if rep.accepted() { "accept" } else { "reject" });
    }
}

/// `fpga-rt check` — run schedulability tests on a taskset file.
pub fn check(args: &Args, out: &mut dyn Write) -> CmdResult {
    let ts = taskset_from(args)?;
    let dev = device_from(args)?;
    let which = args.flags.get("test").map(String::as_str).unwrap_or("any");
    let verbose = args.has("verbose");
    let exact = args.has("exact");

    let run_on = |out: &mut dyn Write, ts_f: &TaskSet<f64>| -> Result<bool, String> {
        let reports: Vec<TestReport> = if exact {
            // Model validation guarantees finite inputs, so the continued-
            // fraction conversion cannot fail here.
            let ts_x = ts_f
                .map_time(|v| {
                    Rat64::approx_f64(v, 1_000_000).expect("validated finite task parameters")
                })
                .map_err(|e| e.to_string())?;
            let tests = selected_tests(which)?;
            // Rat64 operators panic on i64 overflow (by design — exact mode
            // must never silently lose precision). Full-precision f64 inputs
            // can drive GN2's products past i64 range, so surface that as a
            // usage error instead of a crash. Any other panic is a real bug
            // and keeps unwinding.
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                tests.iter().map(|t| t.check_exact(&ts_x, &dev)).collect::<Vec<_>>()
            }));
            match caught {
                Ok(reports) => reports,
                Err(payload) => {
                    let is_overflow = payload
                        .downcast_ref::<String>()
                        .is_some_and(|s| s.contains("Rat64 overflow"))
                        || payload
                            .downcast_ref::<&str>()
                            .is_some_and(|s| s.contains("Rat64 overflow"));
                    if is_overflow {
                        return Err("exact arithmetic overflowed i64 for this taskset; \
                                    --exact is meant for small-denominator (knife-edge) \
                                    parameters — rerun without --exact"
                            .to_string());
                    }
                    std::panic::resume_unwind(payload);
                }
            }
        } else {
            selected_tests(which)?.iter().map(|t| t.check_f64(ts_f, &dev)).collect()
        };
        let mut any = false;
        for rep in &reports {
            report_line(out, rep, verbose);
            any |= rep.accepted();
        }
        Ok(any)
    };

    let accepted = run_on(out, &ts)?;
    Ok(if accepted { ExitCode::Accepted } else { ExitCode::Rejected })
}

/// A test selectable from the command line, runnable in both numeric modes.
enum CliTest {
    Dp(DpTest),
    Gn1(Gn1Test),
    Gn2(Gn2Test),
    Nec(NecessaryTest),
    Any,
}

impl CliTest {
    fn check_f64(&self, ts: &TaskSet<f64>, dev: &Fpga) -> TestReport {
        match self {
            CliTest::Dp(t) => t.check(ts, dev),
            CliTest::Gn1(t) => t.check(ts, dev),
            CliTest::Gn2(t) => t.check(ts, dev),
            CliTest::Nec(t) => t.check(ts, dev),
            CliTest::Any => AnyOfTest::paper_suite().check(ts, dev),
        }
    }

    fn check_exact(&self, ts: &TaskSet<Rat64>, dev: &Fpga) -> TestReport {
        match self {
            CliTest::Dp(t) => t.check(ts, dev),
            CliTest::Gn1(t) => t.check(ts, dev),
            CliTest::Gn2(t) => t.check(ts, dev),
            CliTest::Nec(t) => t.check(ts, dev),
            CliTest::Any => AnyOfTest::paper_suite().check(ts, dev),
        }
    }
}

fn selected_tests(which: &str) -> Result<Vec<CliTest>, String> {
    Ok(match which {
        "dp" => vec![CliTest::Dp(DpTest::default())],
        "gn1" => vec![CliTest::Gn1(Gn1Test::default())],
        "gn2" => vec![CliTest::Gn2(Gn2Test::default())],
        "nec" => vec![CliTest::Nec(NecessaryTest)],
        "any" => vec![CliTest::Any],
        "all" => vec![
            CliTest::Dp(DpTest::default()),
            CliTest::Gn1(Gn1Test::default()),
            CliTest::Gn2(Gn2Test::default()),
        ],
        other => return Err(format!("unknown test {other:?} (dp|gn1|gn2|nec|any|all)")),
    })
}

/// `fpga-rt simulate` — run the discrete-event simulator.
pub fn simulate(args: &Args, out: &mut dyn Write) -> CmdResult {
    let ts = taskset_from(args)?;
    let dev = device_from(args)?;

    let scheduler = match args.flags.get("scheduler").map(String::as_str).unwrap_or("nf") {
        "nf" => SchedulerKind::EdfNf,
        "fkf" => SchedulerKind::EdfFkf,
        other => return Err(format!("unknown scheduler {other:?} (nf|fkf)")),
    };
    let placement = match args.flags.get("placement").map(String::as_str).unwrap_or("free") {
        "free" => PlacementPolicy::FreeMigration,
        "first-fit" => PlacementPolicy::Contiguous(FitStrategy::FirstFit),
        "best-fit" => PlacementPolicy::Contiguous(FitStrategy::BestFit),
        "worst-fit" => PlacementPolicy::Contiguous(FitStrategy::WorstFit),
        other => {
            return Err(format!("unknown placement {other:?} (free|first-fit|best-fit|worst-fit)"))
        }
    };
    let mut config = SimConfig::default()
        .with_scheduler(scheduler)
        .with_placement(placement)
        .with_horizon(Horizon::PeriodsOfTmax(args.get("horizon", 100.0)));
    let oh = args.get("overhead-per-column", 0.0f64);
    if oh > 0.0 {
        config = config.with_overhead(ReconfigOverhead::PerColumn(oh));
    }
    if args.has("trace") {
        config = config.with_full_trace();
    }

    let outcome = simulate_f64(&ts, &dev, &config).map_err(|e| e.to_string())?;
    let m = &outcome.metrics;
    let _ = writeln!(
        out,
        "span {:.3}: released {}, completed {}, preemptions {}, placements {}",
        m.span, m.released, m.completed, m.preemptions, m.placements
    );
    let _ = writeln!(out, "mean fabric utilization: {:.3}", m.mean_utilization(dev.columns()));
    for (k, r) in m.response.iter().enumerate() {
        if let Some(mean) = r.mean() {
            let _ = writeln!(out, "  τ{k}: max response {:.3}, mean {:.3}", r.max, mean);
        }
    }
    match outcome.first_miss() {
        None => {
            let _ = writeln!(out, "no deadline miss");
            if let Some(trace) = &outcome.trace {
                let _ = write!(out, "{}", trace.render_ascii(ts.len(), 72));
            }
            Ok(ExitCode::Accepted)
        }
        Some(miss) => {
            let _ = writeln!(
                out,
                "MISS: {} job #{} at t={:.3} ({:.3} work left)",
                miss.task, miss.job_index, miss.time, miss.remaining
            );
            Ok(ExitCode::Rejected)
        }
    }
}

/// `fpga-rt size` — smallest device passing each test (binary search; all
/// tests are monotone in the device size, see the scale-invariance property
/// tests).
pub fn size(args: &Args, out: &mut dyn Write) -> CmdResult {
    let ts = taskset_from(args)?;
    let max = args.get("max", 1000u32);
    let lo = ts.amax();

    let minimal = |accepts: &dyn Fn(&Fpga) -> bool| -> Option<u32> {
        let hi_dev = Fpga::new(max).ok()?;
        if !accepts(&hi_dev) {
            return None;
        }
        let (mut lo, mut hi) = (lo.max(1), max);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if accepts(&Fpga::new(mid).ok()?) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Some(lo)
    };

    let dp = minimal(&|d| DpTest::default().is_schedulable(&ts, d));
    let gn1 = minimal(&|d| Gn1Test::default().is_schedulable(&ts, d));
    let gn2 = minimal(&|d| Gn2Test::default().is_schedulable(&ts, d));
    let any = minimal(&|d| AnyOfTest::paper_suite().is_schedulable(&ts, d));
    for (name, v) in [("DP", dp), ("GN1", gn1), ("GN2", gn2), ("DP∪GN1∪GN2", any)] {
        match v {
            Some(c) => {
                let _ = writeln!(out, "{name:<12} {c} columns");
            }
            None => {
                let _ = writeln!(out, "{name:<12} none ≤ {max}");
            }
        }
    }
    Ok(if any.is_some() { ExitCode::Accepted } else { ExitCode::Rejected })
}

/// `fpga-rt generate` — emit a random taskset as JSON.
pub fn generate(args: &Args, out: &mut dyn Write) -> CmdResult {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let seed = args.get("seed", 42u64);
    let spec = match args.flags.get("figure") {
        Some(id) => FigureWorkload::by_id(id).ok_or_else(|| format!("unknown figure {id:?}"))?.spec,
        None => TasksetSpec::unconstrained(args.get("n", 10usize)),
    };
    let ts = spec.generate(&mut StdRng::seed_from_u64(seed));
    let json = if args.has("pretty") {
        serde_json::to_string_pretty(&ts)
    } else {
        serde_json::to_string(&ts)
    }
    .map_err(|e| e.to_string())?;
    let _ = writeln!(out, "{json}");
    Ok(ExitCode::Accepted)
}

/// `fpga-rt tables` — the paper's Tables 1–3 verdict matrix.
pub fn tables(out: &mut dyn Write) -> CmdResult {
    for case in fpga_rt_exp::tables::paper_tables() {
        let _ = write!(out, "{}", fpga_rt_exp::tables::render_table_case(&case));
        let _ = writeln!(out);
    }
    Ok(ExitCode::Accepted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_taskset(name: &str, tuples: &[(f64, f64, f64, u32)]) -> String {
        let ts: TaskSet<f64> = TaskSet::try_from_tuples(tuples).unwrap();
        let dir = std::env::temp_dir().join("fpga-rt-cli-cmds");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, serde_json::to_string(&ts).unwrap()).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn args(line: &[&str]) -> Args {
        Args::from_args(line.iter().map(|s| s.to_string()))
    }

    #[test]
    fn check_accepts_table3_via_gn2() {
        let path = write_taskset("t3.json", &[(2.10, 5.0, 5.0, 7), (2.00, 7.0, 7.0, 7)]);
        let mut buf = Vec::new();
        let code = check(
            &args(&["--taskset", &path, "--columns", "10", "--test", "all", "--verbose"]),
            &mut buf,
        )
        .unwrap();
        assert_eq!(code, ExitCode::Accepted);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("[GN2] ACCEPTED"));
        assert!(text.contains("[DP] REJECTED"));
    }

    #[test]
    fn check_exact_mode_runs() {
        let path = write_taskset("t1.json", &[(1.26, 7.0, 7.0, 9), (0.95, 5.0, 5.0, 6)]);
        let mut buf = Vec::new();
        let code = check(
            &args(&["--taskset", &path, "--columns", "10", "--test", "gn2", "--exact"]),
            &mut buf,
        )
        .unwrap();
        assert_eq!(code, ExitCode::Rejected, "Table 1 is rejected by GN2");
    }

    #[test]
    fn check_rejects_unknown_test() {
        let path = write_taskset("t3b.json", &[(1.0, 5.0, 5.0, 1)]);
        assert!(check(
            &args(&["--taskset", &path, "--columns", "10", "--test", "zzz"]),
            &mut Vec::new()
        )
        .is_err());
    }

    #[test]
    fn simulate_reports_miss_and_clean() {
        let clean = write_taskset("clean.json", &[(1.0, 5.0, 5.0, 4)]);
        let mut buf = Vec::new();
        let code = simulate(&args(&["--taskset", &clean, "--columns", "10"]), &mut buf).unwrap();
        assert_eq!(code, ExitCode::Accepted);
        assert!(String::from_utf8(buf).unwrap().contains("no deadline miss"));

        let over = write_taskset("over.json", &[(4.0, 5.0, 5.0, 6), (4.0, 5.0, 5.0, 6)]);
        let mut buf = Vec::new();
        let code = simulate(&args(&["--taskset", &over, "--columns", "10"]), &mut buf).unwrap();
        assert_eq!(code, ExitCode::Rejected);
        assert!(String::from_utf8(buf).unwrap().contains("MISS"));
    }

    #[test]
    fn simulate_with_trace_prints_gantt() {
        let path = write_taskset("tr.json", &[(1.0, 5.0, 5.0, 4)]);
        let mut buf = Vec::new();
        simulate(
            &args(&["--taskset", &path, "--columns", "10", "--trace", "--horizon", "3"]),
            &mut buf,
        )
        .unwrap();
        assert!(String::from_utf8(buf).unwrap().contains('#'));
    }

    #[test]
    fn size_finds_minimums() {
        let path = write_taskset("sz.json", &[(1.0, 10.0, 10.0, 5), (1.0, 8.0, 8.0, 3)]);
        let mut buf = Vec::new();
        let code = size(&args(&["--taskset", &path]), &mut buf).unwrap();
        assert_eq!(code, ExitCode::Accepted);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("DP"));
        assert!(text.contains("columns"));
    }

    #[test]
    fn generate_emits_valid_taskset_json() {
        let mut buf = Vec::new();
        generate(&args(&["--n", "5", "--seed", "7"]), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let ts: TaskSet<f64> = serde_json::from_str(text.trim()).unwrap();
        assert_eq!(ts.len(), 5);
        // Deterministic.
        let mut buf2 = Vec::new();
        generate(&args(&["--n", "5", "--seed", "7"]), &mut buf2).unwrap();
        assert_eq!(text, String::from_utf8(buf2).unwrap());
    }

    #[test]
    fn generate_figure_spec() {
        let mut buf = Vec::new();
        generate(&args(&["--figure", "fig4a", "--seed", "1"]), &mut buf).unwrap();
        let ts: TaskSet<f64> =
            serde_json::from_str(String::from_utf8(buf).unwrap().trim()).unwrap();
        assert_eq!(ts.len(), 10);
        assert!(ts.amin() >= 50);
    }
}
