//! Subcommand implementations.

use crate::args::{
    artifact_target, cache_entries, connect_endpoint, exact_margin, kernel_flag, listen_endpoint,
    metrics_target, parsed_flag, positive_count, write_metrics, ArtifactFormat,
};
use crate::io::{device_from, taskset_from};
use crate::ExitCode;
use fpga_rt_analysis::{AnyOfTest, DpTest, Gn1Test, Gn2Test, NecessaryTest, SchedTest, TestReport};
use fpga_rt_exp::cli::Args;
use fpga_rt_exp::sweep::{analysis_evaluators_for, run_pool_sweep, PoolSweepConfig};
use fpga_rt_gen::{FigureWorkload, TasksetSpec, UtilizationBins};
use fpga_rt_model::{Fpga, Rat64, TaskSet};
use fpga_rt_service::{
    serve_session_with_obs, ClientStream, Endpoint, ServeConfig, SocketServer, TransportConfig,
};
use fpga_rt_sim::{
    simulate_f64, FitStrategy, Horizon, PlacementPolicy, ReconfigOverhead, SchedulerKind, SimConfig,
};
use std::io::Write;

type CmdResult = Result<ExitCode, String>;

/// Run `f`, mapping a `Rat64` i64-overflow panic into a clean usage error
/// (process exit code 2) instead of a crash.
///
/// `Rat64` operators panic on overflow by design — exact mode must never
/// silently lose precision — and full-precision `f64` inputs can drive
/// GN2's products past i64 range. Every subcommand that can run exact
/// arithmetic (`check --exact`, `size --exact`, `tables`) routes through
/// this guard; any other panic is a real bug and keeps unwinding.
pub(crate) fn catch_rat64_overflow<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => Ok(r),
        Err(payload) => {
            if Rat64::is_overflow_panic(payload.as_ref()) {
                Err("exact arithmetic overflowed i64 for this taskset; \
                     exact verdicts need small-denominator (knife-edge) \
                     parameters — use the default f64 mode instead"
                    .to_string())
            } else {
                std::panic::resume_unwind(payload)
            }
        }
    }
}

fn report_line(out: &mut dyn Write, rep: &TestReport, verbose: bool) {
    if verbose {
        let _ = write!(out, "{}", rep.summarize());
    } else {
        let _ =
            writeln!(out, "{:<12} {}", rep.test, if rep.accepted() { "accept" } else { "reject" });
    }
}

/// `fpga-rt check` — run schedulability tests on a taskset file.
pub fn check(args: &Args, out: &mut dyn Write) -> CmdResult {
    let ts = taskset_from(args)?;
    let dev = device_from(args)?;
    let which = args.flags.get("test").map(String::as_str).unwrap_or("any");
    let verbose = args.has("verbose");
    let exact = args.has("exact");

    let run_on = |out: &mut dyn Write, ts_f: &TaskSet<f64>| -> Result<bool, String> {
        let reports: Vec<TestReport> = if exact {
            // Model validation guarantees finite inputs, so the continued-
            // fraction conversion cannot fail here.
            let ts_x = ts_f
                .map_time(|v| {
                    Rat64::approx_f64(v, 1_000_000).expect("validated finite task parameters")
                })
                .map_err(|e| e.to_string())?;
            let tests = selected_tests(which)?;
            catch_rat64_overflow(|| {
                tests.iter().map(|t| t.check_exact(&ts_x, &dev)).collect::<Vec<_>>()
            })?
        } else {
            selected_tests(which)?.iter().map(|t| t.check_f64(ts_f, &dev)).collect()
        };
        let mut any = false;
        for rep in &reports {
            report_line(out, rep, verbose);
            any |= rep.accepted();
        }
        Ok(any)
    };

    let accepted = run_on(out, &ts)?;
    Ok(if accepted { ExitCode::Accepted } else { ExitCode::Rejected })
}

/// A test selectable from the command line, runnable in both numeric modes.
enum CliTest {
    Dp(DpTest),
    Gn1(Gn1Test),
    Gn2(Gn2Test),
    Nec(NecessaryTest),
    Any,
}

impl CliTest {
    fn check_f64(&self, ts: &TaskSet<f64>, dev: &Fpga) -> TestReport {
        match self {
            CliTest::Dp(t) => t.check(ts, dev),
            CliTest::Gn1(t) => t.check(ts, dev),
            CliTest::Gn2(t) => t.check(ts, dev),
            CliTest::Nec(t) => t.check(ts, dev),
            CliTest::Any => AnyOfTest::paper_suite().check(ts, dev),
        }
    }

    fn check_exact(&self, ts: &TaskSet<Rat64>, dev: &Fpga) -> TestReport {
        match self {
            CliTest::Dp(t) => t.check(ts, dev),
            CliTest::Gn1(t) => t.check(ts, dev),
            CliTest::Gn2(t) => t.check(ts, dev),
            CliTest::Nec(t) => t.check(ts, dev),
            CliTest::Any => AnyOfTest::paper_suite().check(ts, dev),
        }
    }
}

fn selected_tests(which: &str) -> Result<Vec<CliTest>, String> {
    Ok(match which {
        "dp" => vec![CliTest::Dp(DpTest::default())],
        "gn1" => vec![CliTest::Gn1(Gn1Test::default())],
        "gn2" => vec![CliTest::Gn2(Gn2Test::default())],
        "nec" => vec![CliTest::Nec(NecessaryTest)],
        "any" => vec![CliTest::Any],
        "all" => vec![
            CliTest::Dp(DpTest::default()),
            CliTest::Gn1(Gn1Test::default()),
            CliTest::Gn2(Gn2Test::default()),
        ],
        other => return Err(format!("unknown test {other:?} (dp|gn1|gn2|nec|any|all)")),
    })
}

/// `fpga-rt simulate` — run the discrete-event simulator.
pub fn simulate(args: &Args, out: &mut dyn Write) -> CmdResult {
    let ts = taskset_from(args)?;
    let dev = device_from(args)?;

    let scheduler = match args.flags.get("scheduler").map(String::as_str).unwrap_or("nf") {
        "nf" => SchedulerKind::EdfNf,
        "fkf" => SchedulerKind::EdfFkf,
        other => return Err(format!("unknown scheduler {other:?} (nf|fkf)")),
    };
    let placement = match args.flags.get("placement").map(String::as_str).unwrap_or("free") {
        "free" => PlacementPolicy::FreeMigration,
        "first-fit" => PlacementPolicy::Contiguous(FitStrategy::FirstFit),
        "best-fit" => PlacementPolicy::Contiguous(FitStrategy::BestFit),
        "worst-fit" => PlacementPolicy::Contiguous(FitStrategy::WorstFit),
        other => {
            return Err(format!("unknown placement {other:?} (free|first-fit|best-fit|worst-fit)"))
        }
    };
    let mut config = SimConfig::default()
        .with_scheduler(scheduler)
        .with_placement(placement)
        .with_horizon(Horizon::PeriodsOfTmax(args.get("horizon", 100.0)));
    let oh = args.get("overhead-per-column", 0.0f64);
    if oh > 0.0 {
        config = config.with_overhead(ReconfigOverhead::PerColumn(oh));
    }
    if args.has("trace") {
        config = config.with_full_trace();
    }

    let outcome = simulate_f64(&ts, &dev, &config).map_err(|e| e.to_string())?;
    let m = &outcome.metrics;
    let _ = writeln!(
        out,
        "span {:.3}: released {}, completed {}, preemptions {}, placements {}",
        m.span, m.released, m.completed, m.preemptions, m.placements
    );
    let _ = writeln!(out, "mean fabric utilization: {:.3}", m.mean_utilization(dev.columns()));
    for (k, r) in m.response.iter().enumerate() {
        if let Some(mean) = r.mean() {
            let _ = writeln!(out, "  τ{k}: max response {:.3}, mean {:.3}", r.max, mean);
        }
    }
    match outcome.first_miss() {
        None => {
            let _ = writeln!(out, "no deadline miss");
            if let Some(trace) = &outcome.trace {
                let _ = write!(out, "{}", trace.render_ascii(ts.len(), 72));
            }
            Ok(ExitCode::Accepted)
        }
        Some(miss) => {
            let _ = writeln!(
                out,
                "MISS: {} job #{} at t={:.3} ({:.3} work left)",
                miss.task, miss.job_index, miss.time, miss.remaining
            );
            Ok(ExitCode::Rejected)
        }
    }
}

/// Smallest device (in `[lo, max]` columns) each test accepts, generic over
/// the numeric representation (binary search; all tests are monotone in the
/// device size, see the scale-invariance property tests).
fn size_rows<T: fpga_rt_model::Time>(
    ts: &TaskSet<T>,
    lo: u32,
    max: u32,
) -> Vec<(&'static str, Option<u32>)> {
    let minimal = |accepts: &dyn Fn(&Fpga) -> bool| -> Option<u32> {
        let hi_dev = Fpga::new(max).ok()?;
        if !accepts(&hi_dev) {
            return None;
        }
        let (mut lo, mut hi) = (lo.max(1), max);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if accepts(&Fpga::new(mid).ok()?) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Some(lo)
    };
    vec![
        ("DP", minimal(&|d| DpTest::default().is_schedulable(ts, d))),
        ("GN1", minimal(&|d| Gn1Test::default().is_schedulable(ts, d))),
        ("GN2", minimal(&|d| Gn2Test::default().is_schedulable(ts, d))),
        ("DP∪GN1∪GN2", minimal(&|d| AnyOfTest::paper_suite().is_schedulable(ts, d))),
    ]
}

/// `fpga-rt size` — smallest device passing each test, in `f64` or (with
/// `--exact`) exact rational arithmetic.
pub fn size(args: &Args, out: &mut dyn Write) -> CmdResult {
    let ts = taskset_from(args)?;
    let max = args.get("max", 1000u32);
    let lo = ts.amax();

    let rows = if args.has("exact") {
        let ts_x = ts
            .map_time(|v| {
                Rat64::approx_f64(v, 1_000_000).expect("validated finite task parameters")
            })
            .map_err(|e| e.to_string())?;
        catch_rat64_overflow(move || size_rows(&ts_x, lo, max))?
    } else {
        size_rows(&ts, lo, max)
    };

    for (name, v) in &rows {
        match v {
            Some(c) => {
                let _ = writeln!(out, "{name:<12} {c} columns");
            }
            None => {
                let _ = writeln!(out, "{name:<12} none ≤ {max}");
            }
        }
    }
    let any = rows.last().and_then(|(_, v)| *v);
    Ok(if any.is_some() { ExitCode::Accepted } else { ExitCode::Rejected })
}

/// `fpga-rt generate` — emit a random taskset as JSON.
pub fn generate(args: &Args, out: &mut dyn Write) -> CmdResult {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let seed = crate::args::seed(args, 42)?;
    let spec = match args.flags.get("figure") {
        Some(id) => FigureWorkload::by_id(id).ok_or_else(|| format!("unknown figure {id:?}"))?.spec,
        None => TasksetSpec::unconstrained(args.get("n", 10usize)),
    };
    let ts = spec.generate(&mut StdRng::seed_from_u64(seed));
    let json = if args.has("pretty") {
        serde_json::to_string_pretty(&ts)
    } else {
        serde_json::to_string(&ts)
    }
    .map_err(|e| e.to_string())?;
    let _ = writeln!(out, "{json}");
    Ok(ExitCode::Accepted)
}

/// `fpga-rt tables` — the paper's Tables 1–3 verdict matrix (each case is
/// evaluated in f64 *and* exact arithmetic, hence the overflow guard).
pub fn tables(out: &mut dyn Write) -> CmdResult {
    let rendered = catch_rat64_overflow(|| {
        fpga_rt_exp::tables::paper_tables()
            .iter()
            .map(fpga_rt_exp::tables::render_table_case)
            .collect::<Vec<_>>()
    })?;
    for case in rendered {
        let _ = write!(out, "{case}");
        let _ = writeln!(out);
    }
    Ok(ExitCode::Accepted)
}

/// `fpga-rt sweep` — a parallel acceptance-ratio sweep over the shared
/// worker pool: DP/GN1/GN2/AnyOf acceptance curves across utilization bins
/// for one of the paper's figure workloads, at any population size.
///
/// Stdout (the aligned text table) and the `--out` file are byte-identical
/// for every `--workers` value at a fixed seed — CI diffs a 1-worker run
/// against a 4-worker run to enforce this — and for both `--kernel`
/// values (the batch kernel is a bit-identical re-packing of the scalar
/// tests).
pub fn sweep(args: &Args, out: &mut dyn Write) -> CmdResult {
    let figure = args.flags.get("figure").map(String::as_str).unwrap_or("fig3a");
    let workload = FigureWorkload::by_id(figure)
        .ok_or_else(|| format!("unknown figure {figure:?} (fig3a|fig3b|fig4a|fig4b)"))?;
    let bins = parsed_flag(args, "bins", 20usize)?;
    if bins == 0 {
        return Err("--bins must be ≥ 1".into());
    }
    let per_bin = positive_count(args, "per-bin")?.unwrap_or(200);
    let seed = crate::args::seed(args, fpga_rt_exp::cli::DEFAULT_SEED)?;
    let kernel = kernel_flag(args)?;
    let deterministic = args.has("deterministic");
    let out_target = artifact_target(args, "out", &[ArtifactFormat::Json, ArtifactFormat::Csv])?;
    let (metrics, obs) = metrics_target(args, deterministic)?;

    let mut config = PoolSweepConfig::new(workload, per_bin, seed);
    config.bins = UtilizationBins::new(0.0, 1.0, bins);
    config.workers = positive_count(args, "workers")?.unwrap_or(0);
    config.obs = obs.clone();
    let outcome = run_pool_sweep(&config, &analysis_evaluators_for(kernel));

    let _ = write!(out, "{}", fpga_rt_exp::output::render_text(&outcome.result));
    if outcome.exhausted_units > 0 {
        let _ = writeln!(
            out,
            "note: {} of {} samples exhausted the generator's attempt budget",
            outcome.exhausted_units,
            bins * per_bin
        );
    }
    if outcome.failed_units > 0 {
        let _ = writeln!(
            out,
            "warning: {} of {} samples lost to panicking evaluators; \
             the curves cover a reduced population",
            outcome.failed_units,
            bins * per_bin
        );
    }
    if let Some((path, format)) = &out_target {
        let rendered = match format {
            ArtifactFormat::Csv => fpga_rt_exp::output::render_csv(&outcome.result),
            _ => {
                let mut json =
                    serde_json::to_string_pretty(&outcome.result).map_err(|e| e.to_string())?;
                json.push('\n');
                json
            }
        };
        std::fs::write(path, rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(registry) = obs.registry() {
        registry.set_meta("mode", "sweep");
        registry.set_meta("figure", figure);
        registry.set_meta("bins", &bins.to_string());
        registry.set_meta("per_bin", &per_bin.to_string());
        registry.set_meta("seed", &seed.to_string());
        registry.set_meta("deterministic", if deterministic { "true" } else { "false" });
        write_metrics(&metrics, &registry.snapshot())?;
    }
    Ok(ExitCode::Accepted)
}

/// `fpga-rt conform` — cross-validate every analytic verdict against the
/// discrete-event simulator over binned UUniFast populations, classifying
/// each (taskset, evaluator) pair into sound-accept / sound-reject /
/// pessimistic-reject / SOUNDNESS-VIOLATION with minimized counterexample
/// traces for any violation.
///
/// Stdout and the `--out` artifact are byte-identical for every
/// `--workers` value at a fixed seed — CI diffs a 1-worker run against a
/// 4-worker run and additionally gates on zero violations over ≥10 000
/// tasksets across all four figures. Exit code: 0 when every verdict
/// conforms, 1 on any soundness violation.
pub fn conform(args: &Args, out: &mut dyn Write) -> CmdResult {
    use fpga_rt_conform::{
        paper_conform_evaluators_for, render_csv_multi, render_text, run_conform, run_twod_bridge,
        ConformConfig, ConformReport, TwodBridgeConfig,
    };

    let bins = parsed_flag(args, "bins", 20usize)?;
    if bins == 0 {
        return Err("--bins must be ≥ 1".into());
    }
    let per_bin = positive_count(args, "per-bin")?.unwrap_or(100);
    let seed = crate::args::seed(args, fpga_rt_exp::cli::DEFAULT_SEED)?;
    let workers = positive_count(args, "workers")?.unwrap_or(0);
    let kernel = kernel_flag(args)?;
    let sim_horizon = parsed_flag(args, "sim-horizon", 50.0f64)?;
    if !(sim_horizon.is_finite() && sim_horizon > 0.0) {
        return Err(format!("--sim-horizon must be a positive factor, got {sim_horizon}"));
    }
    let deterministic = args.has("deterministic");

    if args.has("twod") {
        // A 1-D population flag in bridge mode (or vice versa, below)
        // would be silently ignored — i.e. a differently-sized population
        // than the operator asked for. Refuse instead.
        for stray in ["figure", "per-bin"] {
            if args.has(stray) {
                return Err(format!(
                    "--{stray} applies to the 1-D mode; --twod sizes its \
                     population with --samples"
                ));
            }
        }
        // Same policy for --kernel: the bridge does not thread a kernel
        // choice, so accepting the flag would pretend a scalar
        // cross-check happened when it did not.
        if args.has("kernel") {
            return Err("--kernel applies to the 1-D mode; --twod always uses the \
                 engine's default evaluators"
                .into());
        }
        // The bridge does not thread the telemetry registry; accepting the
        // flag would write an empty metrics artifact.
        if args.has("metrics-out") {
            return Err("--metrics-out applies to the 1-D mode".into());
        }
        let out_target = artifact_target(args, "out", &[ArtifactFormat::Json])?;
        let mut config =
            TwodBridgeConfig::new(positive_count(args, "samples")?.unwrap_or(500), seed);
        config.bins = UtilizationBins::new(0.0, 1.0, bins);
        config.workers = workers;
        config.sim_horizon = sim_horizon;
        let outcome = run_twod_bridge(&config);
        let _ = write!(out, "{}", render_text(&outcome.report));
        let _ = writeln!(
            out,
            "sim-1d-nf vs native-2d: both-clean {}, 1d-clean/2d-miss (anomaly) {}, \
             1d-miss/2d-clean {}, both-miss {}",
            outcome.sim1d.both_clean,
            outcome.sim1d.anomaly_1d_clean_2d_miss,
            outcome.sim1d.conservative_1d_miss_2d_clean,
            outcome.sim1d.both_miss
        );
        let _ = writeln!(
            out,
            "native-2d scheduling anomalies on AnyOf-accepted draws \
             (measured, not gated): {}",
            outcome.analytic_anomalies
        );
        if let Some((path, _)) = &out_target {
            let mut json =
                serde_json::to_string_pretty(&outcome.artifact()).map_err(|e| e.to_string())?;
            json.push('\n');
            std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        }
        if outcome.failed_units > 0 {
            // An unclassified unit could be the violating one; a gate
            // must not certify a silently reduced population.
            return Err(format!(
                "{} of {} samples lost to panicking evaluators — population not fully \
                 classified",
                outcome.failed_units, config.samples
            ));
        }
        return Ok(if outcome.report.sound() { ExitCode::Accepted } else { ExitCode::Rejected });
    }

    if args.has("samples") {
        return Err("--samples applies to --twod mode; the 1-D mode sizes its population \
             with --bins × --per-bin"
            .into());
    }
    let figure = args.flags.get("figure").map(String::as_str).unwrap_or("all");
    let workloads: Vec<FigureWorkload> = if figure == "all" {
        FigureWorkload::all()
    } else {
        vec![FigureWorkload::by_id(figure)
            .ok_or_else(|| format!("unknown figure {figure:?} (fig3a|fig3b|fig4a|fig4b|all)"))?]
    };

    let out_target = artifact_target(args, "out", &[ArtifactFormat::Json, ArtifactFormat::Csv])?;
    let (metrics, obs) = metrics_target(args, deterministic)?;

    let mut reports: Vec<ConformReport> = Vec::with_capacity(workloads.len());
    let mut exhausted = 0usize;
    let mut failed = 0usize;
    for workload in workloads {
        let mut config = ConformConfig::new(workload, per_bin, seed);
        config.bins = UtilizationBins::new(0.0, 1.0, bins);
        config.workers = workers;
        config.sim_horizon = sim_horizon;
        // One shared registry across the figure loop, so per-figure
        // counters accumulate into a single artifact.
        config.obs = obs.clone();
        let outcome = run_conform(&config, paper_conform_evaluators_for(kernel));
        let _ = write!(out, "{}", render_text(&outcome.report));
        exhausted += outcome.exhausted_units;
        failed += outcome.failed_units;
        reports.push(outcome.report);
    }
    let violations: usize = reports.iter().map(|r| r.total_violations).sum();
    if exhausted > 0 {
        let _ = writeln!(out, "note: {exhausted} samples exhausted the generator's attempt budget");
    }

    if let Some((path, format)) = &out_target {
        let rendered = match format {
            ArtifactFormat::Csv => render_csv_multi(&reports),
            _ => {
                let mut json = if reports.len() == 1 {
                    serde_json::to_string_pretty(&reports[0]).map_err(|e| e.to_string())?
                } else {
                    serde_json::to_string_pretty(&reports).map_err(|e| e.to_string())?
                };
                json.push('\n');
                json
            }
        };
        std::fs::write(path, rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(registry) = obs.registry() {
        registry.set_meta("mode", "conform");
        registry.set_meta("figure", figure);
        registry.set_meta("bins", &bins.to_string());
        registry.set_meta("per_bin", &per_bin.to_string());
        registry.set_meta("seed", &seed.to_string());
        registry.set_meta("sim_horizon", &sim_horizon.to_string());
        registry.set_meta("deterministic", if deterministic { "true" } else { "false" });
        write_metrics(&metrics, &registry.snapshot())?;
    }
    if failed > 0 {
        // An unclassified unit could be the violating one; a gate must
        // not certify a silently reduced population.
        return Err(format!(
            "{failed} samples lost to panicking evaluators — population not fully classified"
        ));
    }
    Ok(if violations == 0 { ExitCode::Accepted } else { ExitCode::Rejected })
}

/// `fpga-rt serve` — the online admission-control service. The default
/// `--listen stdio` transport reads JSONL requests on stdin (or `--input
/// FILE`) and writes one JSONL response per request on stdout; `--listen
/// tcp://HOST:PORT` / `--listen unix://PATH` serves the same protocol to
/// many concurrent socket connections through the non-blocking event
/// loop, byte-identical per connection to the stdio transcript. Either
/// way, a human summary goes to stderr.
pub fn serve(args: &Args, out: &mut dyn Write) -> CmdResult {
    let columns = positive_count(args, "columns")?.ok_or("--columns N (≥1) is required")? as u32;
    let config = ServeConfig {
        columns,
        shards: positive_count(args, "shards")?.unwrap_or(1).min(u32::MAX as usize) as u32,
        workers: positive_count(args, "workers")?.unwrap_or(0),
        batch: positive_count(args, "batch")?.unwrap_or(64),
        exact_margin: exact_margin(args)?,
        max_denominator: 1_000_000,
        deterministic: args.has("deterministic"),
        cache: cache_entries(args)?,
        sessions: positive_count(args, "sessions")?,
    };
    let endpoint = listen_endpoint(args)?;
    let conns = positive_count(args, "conns")?;
    let input = args.flags.get("input").filter(|p| !p.is_empty());
    let (metrics, obs) = metrics_target(args, config.deterministic)?;
    let start = std::time::Instant::now();
    let (stats, snapshot) = if endpoint == Endpoint::Stdio {
        if conns.is_some() {
            return Err("--conns applies to socket listeners; stdio serves exactly one pipe".into());
        }
        match input {
            Some(path) => {
                let file =
                    std::fs::File::open(path).map_err(|e| format!("cannot read {path}: {e}"))?;
                serve_session_with_obs(&mut std::io::BufReader::new(file), out, &config, obs)?
            }
            None => serve_session_with_obs(&mut std::io::stdin().lock(), out, &config, obs)?,
        }
    } else {
        if input.is_some() {
            return Err(format!(
                "--input replays a file over stdio; it cannot be combined with \
                 --listen {endpoint} (use `fpga-rt client --connect {endpoint} --input FILE`)"
            ));
        }
        let transport = TransportConfig { max_conns: conns, ..TransportConfig::default() };
        let server = SocketServer::bind(&endpoint, transport)?;
        eprintln!("listening on {}", server.local_endpoint());
        server.serve(&config, obs)?
    };
    write_metrics(&metrics, &snapshot)?;
    let elapsed = start.elapsed().as_secs_f64();
    let rate = if elapsed > 0.0 { stats.requests as f64 / elapsed } else { 0.0 };
    eprintln!(
        "served {} requests in {} batches ({rate:.0} req/s): \
         {} accepted, {} rejected, {} errors; \
         tiers dp-inc={} gn1={} gn2={} exact={}",
        stats.requests,
        stats.batches,
        stats.accepted,
        stats.rejected,
        stats.errors,
        stats.tiers.dp_inc,
        stats.tiers.gn1,
        stats.tiers.gn2,
        stats.tiers.exact
    );
    Ok(ExitCode::Accepted)
}

/// `fpga-rt client` — replay a JSONL request stream against a running
/// socket listener: connect (retrying for up to five seconds, so a
/// just-forked server finishes binding), stream `--input FILE` (or
/// stdin), half-close the write side, and copy the response transcript
/// to stdout until the server closes. The CI `socket-smoke` job diffs
/// that stdout against the stdio golden byte-for-byte.
///
/// Sending happens on a second thread while responses drain here, so a
/// request stream larger than the server's outbound budget cannot
/// deadlock (or trip the slow-consumer disconnect) waiting for a reader.
pub fn client(args: &Args, out: &mut dyn Write) -> CmdResult {
    use std::io::Read;
    let endpoint = connect_endpoint(args)?;
    let input: Vec<u8> = match args.flags.get("input").filter(|p| !p.is_empty()) {
        Some(path) => std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?,
        None => {
            let mut buf = Vec::new();
            std::io::stdin()
                .lock()
                .read_to_end(&mut buf)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            buf
        }
    };
    let mut stream =
        ClientStream::connect_with_retry(&endpoint, std::time::Duration::from_secs(5))?;
    let mut writer = stream.try_clone()?;
    let sender = std::thread::spawn(move || -> Result<(), String> {
        writer.write_all(&input).map_err(|e| format!("cannot send requests: {e}"))?;
        writer.shutdown_write()
    });
    let mut responses = 0usize;
    let mut chunk = [0u8; 64 * 1024];
    loop {
        let n = stream.read(&mut chunk).map_err(|e| format!("cannot read responses: {e}"))?;
        if n == 0 {
            break;
        }
        out.write_all(&chunk[..n]).map_err(|e| e.to_string())?;
        responses += chunk[..n].iter().filter(|b| **b == b'\n').count();
    }
    sender.join().map_err(|_| "sender thread panicked".to_string())??;
    eprintln!("received {responses} response lines from {endpoint}");
    Ok(ExitCode::Accepted)
}

/// `fpga-rt loadgen` — the traffic-shaped load generator: synthesize
/// deterministic arrival streams (Poisson, bursty on/off, adversarial
/// knife-edge) across many logical sessions, replay them against
/// in-process admission controllers on the shared worker pool, and report
/// p50/p99/p999/max latency plus per-tier decision counts.
///
/// Under `--deterministic` the latency columns are zeroed and stdout plus
/// the `--out` artifact are byte-identical for every `--workers` value at
/// a fixed seed (asserted in tests and byte-diffed in CI).
pub fn loadgen(args: &Args, out: &mut dyn Write) -> CmdResult {
    use fpga_rt_loadgen::{run_soak_with_obs, run_with_obs, ArrivalProfile, LoadConfig};

    if args.flags.contains_key("target") {
        return loadgen_socket(args, out);
    }
    let profiles = match args.flags.get("profile").map(String::as_str) {
        None | Some("all") => ArrivalProfile::all(),
        Some(id) => vec![ArrivalProfile::by_id(id)
            .ok_or_else(|| format!("unknown profile {id:?} (poisson|bursty|adversarial|all)"))?],
    };
    let mut config = LoadConfig::default();
    config.ops = positive_count(args, "ops")?.unwrap_or(config.ops);
    config.sessions = positive_count(args, "sessions")?
        .unwrap_or(config.sessions as usize)
        .min(u32::MAX as usize) as u32;
    config.columns = positive_count(args, "columns")?
        .unwrap_or(config.columns as usize)
        .min(u32::MAX as usize) as u32;
    config.rounds = positive_count(args, "rounds")?
        .unwrap_or(config.rounds as usize)
        .min(u32::MAX as usize) as u32;
    config.workers = positive_count(args, "workers")?.unwrap_or(0);
    config.seed = crate::args::seed(args, fpga_rt_exp::cli::DEFAULT_SEED)?;
    config.deterministic = args.has("deterministic");
    config.cache = cache_entries(args)?;

    let out_target = artifact_target(args, "out", &[ArtifactFormat::Json, ArtifactFormat::Csv])?;
    let (metrics, obs) = metrics_target(args, config.deterministic)?;

    let (report, snapshot) = match positive_count(args, "soak")? {
        Some(secs) => run_soak_with_obs(&profiles, &config, secs as u64, obs)?,
        None => run_with_obs(&profiles, &config, obs)?,
    };

    let _ = write!(out, "{}", report.render_text());
    if let Some((path, format)) = &out_target {
        let rendered = match format {
            ArtifactFormat::Csv => report.render_csv(),
            _ => report.render_json(),
        };
        std::fs::write(path, rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    write_metrics(&metrics, &snapshot)?;
    Ok(ExitCode::Accepted)
}

/// `fpga-rt loadgen --target …` — the socket client mode: drive a
/// *running* `fpga-rt serve --listen` process over `--conns` concurrent
/// connections, ping-ponging `--requests` data ops per connection, and
/// verify the transport's per-connection ordering contract (id echo,
/// strictly incrementing `seq`). Exit 0 only when zero responses were
/// dropped or reordered and none errored — the CI `socket-smoke` gate.
fn loadgen_socket(args: &Args, out: &mut dyn Write) -> CmdResult {
    use fpga_rt_loadgen::{run_socket, SocketLoadConfig};
    let spec = args.flags.get("target").expect("dispatched on --target");
    let endpoint = match Endpoint::parse(spec).map_err(|e| format!("--target: {e}"))? {
        Endpoint::Stdio => {
            return Err("--target expects a socket endpoint (`tcp://HOST:PORT` or \
                 `unix://PATH`); the in-process modes already cover stdio-style replay"
                .into())
        }
        endpoint => endpoint,
    };
    // Socket mode measures a live server, so the in-process replay knobs
    // would be silently ignored — refuse them instead.
    for stray in [
        "profile",
        "ops",
        "rounds",
        "soak",
        "workers",
        "columns",
        "sessions",
        "cache",
        "seed",
        "deterministic",
        "out",
        "metrics-out",
    ] {
        if args.has(stray) {
            return Err(format!(
                "--{stray} applies to the in-process modes; --target drives a running \
                 server and is sized with --conns/--requests"
            ));
        }
    }
    let mut config = SocketLoadConfig::default();
    if let Some(n) = positive_count(args, "conns")? {
        config.conns = n;
    }
    if let Some(n) = positive_count(args, "requests")? {
        config.requests = n;
    }
    let report = run_socket(&endpoint, &config)?;
    let _ = write!(out, "{}", report.render_text());
    Ok(if report.clean() && report.errors == 0 { ExitCode::Accepted } else { ExitCode::Rejected })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_taskset(name: &str, tuples: &[(f64, f64, f64, u32)]) -> String {
        let ts: TaskSet<f64> = TaskSet::try_from_tuples(tuples).unwrap();
        let dir = std::env::temp_dir().join("fpga-rt-cli-cmds");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, serde_json::to_string(&ts).unwrap()).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn args(line: &[&str]) -> Args {
        Args::from_args(line.iter().map(|s| s.to_string()))
    }

    #[test]
    fn check_accepts_table3_via_gn2() {
        let path = write_taskset("t3.json", &[(2.10, 5.0, 5.0, 7), (2.00, 7.0, 7.0, 7)]);
        let mut buf = Vec::new();
        let code = check(
            &args(&["--taskset", &path, "--columns", "10", "--test", "all", "--verbose"]),
            &mut buf,
        )
        .unwrap();
        assert_eq!(code, ExitCode::Accepted);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("[GN2] ACCEPTED"));
        assert!(text.contains("[DP] REJECTED"));
    }

    #[test]
    fn check_exact_mode_runs() {
        let path = write_taskset("t1.json", &[(1.26, 7.0, 7.0, 9), (0.95, 5.0, 5.0, 6)]);
        let mut buf = Vec::new();
        let code = check(
            &args(&["--taskset", &path, "--columns", "10", "--test", "gn2", "--exact"]),
            &mut buf,
        )
        .unwrap();
        assert_eq!(code, ExitCode::Rejected, "Table 1 is rejected by GN2");
    }

    #[test]
    fn check_rejects_unknown_test() {
        let path = write_taskset("t3b.json", &[(1.0, 5.0, 5.0, 1)]);
        assert!(check(
            &args(&["--taskset", &path, "--columns", "10", "--test", "zzz"]),
            &mut Vec::new()
        )
        .is_err());
    }

    #[test]
    fn simulate_reports_miss_and_clean() {
        let clean = write_taskset("clean.json", &[(1.0, 5.0, 5.0, 4)]);
        let mut buf = Vec::new();
        let code = simulate(&args(&["--taskset", &clean, "--columns", "10"]), &mut buf).unwrap();
        assert_eq!(code, ExitCode::Accepted);
        assert!(String::from_utf8(buf).unwrap().contains("no deadline miss"));

        let over = write_taskset("over.json", &[(4.0, 5.0, 5.0, 6), (4.0, 5.0, 5.0, 6)]);
        let mut buf = Vec::new();
        let code = simulate(&args(&["--taskset", &over, "--columns", "10"]), &mut buf).unwrap();
        assert_eq!(code, ExitCode::Rejected);
        assert!(String::from_utf8(buf).unwrap().contains("MISS"));
    }

    #[test]
    fn simulate_with_trace_prints_gantt() {
        let path = write_taskset("tr.json", &[(1.0, 5.0, 5.0, 4)]);
        let mut buf = Vec::new();
        simulate(
            &args(&["--taskset", &path, "--columns", "10", "--trace", "--horizon", "3"]),
            &mut buf,
        )
        .unwrap();
        assert!(String::from_utf8(buf).unwrap().contains('#'));
    }

    /// Full-precision parameters whose `Rat64` images have ~10^6
    /// denominators: GN2's products overflow i64 in exact mode.
    fn overflow_tuples() -> Vec<(f64, f64, f64, u32)> {
        vec![
            (1.000_001_000_017_000_3, 6.000_002_000_094_004, 6.000_002_000_094_004, 3),
            (1.000_002_000_042_001, 7.000_003_000_141_007, 7.000_003_000_141_007, 4),
            (1.000_003_000_117_004_6, 8.000_004_000_188_01, 8.000_004_000_188_01, 5),
            (1.000_004_000_164_006_7, 9.000_005_000_235_01, 9.000_005_000_235_01, 6),
        ]
    }

    /// Satellite regression: every subcommand that can run exact arithmetic
    /// maps a Rat64 overflow to a clean usage error (process exit code 2),
    /// never a crash.
    #[test]
    fn exact_overflow_maps_to_exit_2_in_check_and_size() {
        let path = write_taskset("ovf.json", &overflow_tuples());
        let check_err = check(
            &args(&["--taskset", &path, "--columns", "20", "--test", "gn2", "--exact"]),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(check_err.contains("overflowed"), "{check_err}");
        let size_err = size(&args(&["--taskset", &path, "--exact"]), &mut Vec::new()).unwrap_err();
        assert!(size_err.contains("overflowed"), "{size_err}");
        // Through the dispatcher these surface as ExitCode::Error → exit 2.
        let argv: Vec<String> =
            ["size", "--taskset", &path, "--exact"].iter().map(|s| s.to_string()).collect();
        let code = crate::run(&argv, &mut Vec::new());
        assert!(matches!(code, ExitCode::Error(msg) if msg.contains("overflowed")));
    }

    #[test]
    fn size_exact_agrees_with_f64_on_benign_input() {
        let path = write_taskset("szx.json", &[(1.0, 10.0, 10.0, 5), (1.0, 8.0, 8.0, 3)]);
        let mut plain = Vec::new();
        size(&args(&["--taskset", &path]), &mut plain).unwrap();
        let mut exact = Vec::new();
        size(&args(&["--taskset", &path, "--exact"]), &mut exact).unwrap();
        assert_eq!(String::from_utf8(plain).unwrap(), String::from_utf8(exact).unwrap());
    }

    #[test]
    fn serve_replays_a_session_from_a_file() {
        let dir = std::env::temp_dir().join("fpga-rt-cli-cmds");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.jsonl");
        std::fs::write(
            &path,
            concat!(
                r#"{"op":"admit","task":{"exec":1.0,"deadline":10.0,"period":10.0,"area":3}}"#,
                "\n",
                r#"{"op":"query"}"#,
                "\n",
            ),
        )
        .unwrap();
        let input = path.to_string_lossy().into_owned();
        let mut buf = Vec::new();
        let code =
            serve(&args(&["--columns", "10", "--input", &input, "--deterministic"]), &mut buf)
                .unwrap();
        assert_eq!(code, ExitCode::Accepted);
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"verdict\":\"accept\""));
        assert!(lines[0].contains("\"latency_us\":0"));
        assert!(lines[1].contains("\"stats\""));
    }

    #[test]
    fn serve_requires_columns() {
        assert!(serve(&args(&[]), &mut Vec::new()).is_err());
    }

    /// Satellite regression: the socket flags are validated before any
    /// listener binds or stdin is read — a bad endpoint, `--input`
    /// combined with a socket listener, or `--conns` on stdio are usage
    /// errors (exit code 2) naming the accepted forms.
    #[test]
    fn serve_socket_flag_combinations_are_validated() {
        let err = serve(&args(&["--columns", "10", "--listen", "ftp://h:1"]), &mut Vec::new())
            .unwrap_err();
        assert!(err.contains("--listen:"), "{err}");
        assert!(err.contains("tcp://HOST:PORT") && err.contains("unix://PATH"), "{err}");
        let err = serve(
            &args(&["--columns", "10", "--listen", "tcp://127.0.0.1:0", "--input", "x.jsonl"]),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(err.contains("fpga-rt client"), "{err}");
        let err = serve(&args(&["--columns", "10", "--conns", "4"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains("--conns applies to socket listeners"), "{err}");
        let err = serve(
            &args(&["--columns", "10", "--conns", "0", "--listen", "tcp://h:1"]),
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(err.contains("--conns must be ≥ 1"), "{err}");
        let err = client(&args(&[]), &mut Vec::new()).unwrap_err();
        assert!(err.contains("--connect"), "{err}");
        let err = client(&args(&["--connect", "stdio"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains("not `stdio`"), "{err}");
    }

    /// The tentpole's CLI acceptance criterion in miniature: `serve
    /// --listen unix://…` plus `client --connect unix://…` reproduce the
    /// stdio transcript byte-for-byte (CI re-checks this against the
    /// released binary over TCP and Unix sockets at two worker counts).
    #[test]
    fn serve_and_client_round_trip_a_unix_socket_byte_identically() {
        let dir = std::env::temp_dir().join("fpga-rt-cli-cmds");
        std::fs::create_dir_all(&dir).unwrap();
        let session = dir.join("socket-session.jsonl");
        std::fs::write(
            &session,
            concat!(
                r#"{"session":"a","op":"create","columns":10}"#,
                "\n",
                r#"{"session":"a","op":"admit","task":{"exec":1.0,"deadline":10.0,"period":10.0,"area":3}}"#,
                "\n",
                r#"{"session":"a","op":"query"}"#,
                "\n",
                r#"{"session":"a","op":"stats"}"#,
                "\n",
            ),
        )
        .unwrap();
        let input = session.to_string_lossy().into_owned();
        let sock = dir.join(format!("serve-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&sock);
        let uri = format!("unix://{}", sock.display());

        let mut stdio_out = Vec::new();
        let code = serve(
            &args(&["--columns", "10", "--deterministic", "--input", &input]),
            &mut stdio_out,
        )
        .unwrap();
        assert_eq!(code, ExitCode::Accepted);

        let server_argv: Vec<String> =
            ["--columns", "10", "--deterministic", "--listen", &uri, "--conns", "1"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let server = std::thread::spawn(move || {
            let mut buf = Vec::new();
            let code = serve(&Args::from_args(server_argv), &mut buf);
            (code, buf)
        });
        let mut client_out = Vec::new();
        let code = client(&args(&["--connect", &uri, "--input", &input]), &mut client_out).unwrap();
        assert_eq!(code, ExitCode::Accepted);
        let (server_code, server_buf) = server.join().unwrap();
        assert_eq!(server_code.unwrap(), ExitCode::Accepted);
        assert!(server_buf.is_empty(), "socket mode writes responses to sockets, not stdout");
        assert_eq!(client_out, stdio_out, "socket transcript must match the stdio transcript");
    }

    /// The acceptance criterion of the sweep engine: stdout and the `--out`
    /// file are byte-identical for `--workers 1` and `--workers 8` at a
    /// fixed seed.
    #[test]
    fn sweep_output_is_byte_identical_across_worker_counts() {
        let dir = std::env::temp_dir().join("fpga-rt-cli-cmds");
        std::fs::create_dir_all(&dir).unwrap();
        let mut transcripts = Vec::new();
        for workers in ["1", "8"] {
            let path = dir.join(format!("sweep-w{workers}.json"));
            let out_path = path.to_string_lossy().into_owned();
            let mut buf = Vec::new();
            let code = sweep(
                &args(&[
                    "--figure",
                    "fig3a",
                    "--bins",
                    "3",
                    "--per-bin",
                    "8",
                    "--seed",
                    "7",
                    "--workers",
                    workers,
                    "--out",
                    &out_path,
                ]),
                &mut buf,
            )
            .unwrap();
            assert_eq!(code, ExitCode::Accepted);
            transcripts.push((String::from_utf8(buf).unwrap(), std::fs::read(&path).unwrap()));
        }
        assert_eq!(transcripts[0].0, transcripts[1].0, "stdout differs across workers");
        assert_eq!(transcripts[0].1, transcripts[1].1, "--out JSON differs across workers");
        assert!(transcripts[0].0.contains("AnyOf"));
        let json_text = String::from_utf8(transcripts[0].1.clone()).unwrap();
        let json: fpga_rt_exp::SweepResult =
            serde_json::from_str(&json_text).expect("valid SweepResult JSON");
        assert_eq!(json.series.len(), 4, "DP, GN1, GN2, AnyOf");
    }

    /// The loadgen acceptance criterion: under `--deterministic`, stdout
    /// and the `--out` artifact are byte-identical for `--workers 1` and
    /// `--workers 4` at a fixed seed, and every latency column is zeroed.
    #[test]
    fn loadgen_output_is_byte_identical_across_worker_counts() {
        let dir = std::env::temp_dir().join("fpga-rt-cli-cmds");
        std::fs::create_dir_all(&dir).unwrap();
        let mut transcripts = Vec::new();
        for workers in ["1", "4"] {
            let path = dir.join(format!("loadgen-w{workers}.json"));
            let out_path = path.to_string_lossy().into_owned();
            let mut buf = Vec::new();
            let code = loadgen(
                &args(&[
                    "--ops",
                    "400",
                    "--sessions",
                    "8",
                    "--columns",
                    "32",
                    "--seed",
                    "7",
                    "--deterministic",
                    "--workers",
                    workers,
                    "--out",
                    &out_path,
                ]),
                &mut buf,
            )
            .unwrap();
            assert_eq!(code, ExitCode::Accepted);
            transcripts.push((String::from_utf8(buf).unwrap(), std::fs::read(&path).unwrap()));
        }
        assert_eq!(transcripts[0].0, transcripts[1].0, "stdout differs across workers");
        assert_eq!(transcripts[0].1, transcripts[1].1, "--out JSON differs across workers");
        assert!(transcripts[0].0.contains("adversarial"), "all profiles run by default");
        let json: fpga_rt_loadgen::LoadReport =
            serde_json::from_str(&String::from_utf8(transcripts[0].1.clone()).unwrap())
                .expect("valid LoadReport JSON");
        assert_eq!(json.schema, fpga_rt_loadgen::SCHEMA);
        assert_eq!(json.profiles.len(), 3, "poisson, bursty, adversarial");
        for p in &json.profiles {
            assert_eq!(p.latency.max_ns, 0, "deterministic mode zeroes latencies");
        }
    }

    /// Loadgen flag validation: unknown profiles and `--soak` combined
    /// with `--deterministic` are usage errors; a CSV `--out` renders the
    /// documented header.
    #[test]
    fn loadgen_flags_are_validated() {
        let err = loadgen(&args(&["--profile", "zzz"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains("unknown profile"), "{err}");
        let err = loadgen(&args(&["--deterministic", "--soak", "1"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains("--soak"), "{err}");
        let err = loadgen(&args(&["--columns", "4"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains("≥ 5"), "adversarial profile needs ≥ 5 columns: {err}");

        let dir = std::env::temp_dir().join("fpga-rt-cli-cmds");
        std::fs::create_dir_all(&dir).unwrap();
        let csv_path = dir.join("loadgen.csv").to_string_lossy().into_owned();
        let mut buf = Vec::new();
        let code = loadgen(
            &args(&[
                "--profile",
                "poisson",
                "--ops",
                "200",
                "--sessions",
                "4",
                "--columns",
                "16",
                "--deterministic",
                "--out",
                &csv_path,
            ]),
            &mut buf,
        )
        .unwrap();
        assert_eq!(code, ExitCode::Accepted);
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        assert!(csv.starts_with("profile,ops,admits,"), "{csv}");
        assert_eq!(csv.lines().count(), 2, "header + one profile row");
    }

    /// Loadgen's socket client mode: a bad `--target`, `stdio`, or an
    /// in-process knob combined with `--target` are usage errors — and a
    /// small swarm against an in-process listener runs clean end to end.
    #[test]
    fn loadgen_socket_mode_validates_flags_and_runs_clean() {
        let err = loadgen(&args(&["--target", "ftp://h:1"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains("--target:"), "{err}");
        let err = loadgen(&args(&["--target", "stdio"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains("socket endpoint"), "{err}");
        let err = loadgen(&args(&["--target", "tcp://h:1", "--ops", "100"]), &mut Vec::new())
            .unwrap_err();
        assert!(err.contains("--ops applies to the in-process modes"), "{err}");
        let err = loadgen(&args(&["--target", "tcp://h:1", "--deterministic"]), &mut Vec::new())
            .unwrap_err();
        assert!(err.contains("in-process modes"), "{err}");

        let dir = std::env::temp_dir().join("fpga-rt-cli-cmds");
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join(format!("loadgen-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&sock);
        let uri = format!("unix://{}", sock.display());
        let server_argv: Vec<String> =
            ["--columns", "32", "--shards", "4", "--listen", &uri, "--conns", "8"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let server =
            std::thread::spawn(move || serve(&Args::from_args(server_argv), &mut Vec::new()));
        let mut buf = Vec::new();
        let code = loadgen(&args(&["--target", &uri, "--conns", "8", "--requests", "6"]), &mut buf)
            .unwrap();
        assert_eq!(server.join().unwrap().unwrap(), ExitCode::Accepted);
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(code, ExitCode::Accepted, "{text}");
        assert!(text.contains("8 conns, 64 sent, 64 received, 0 dropped, 0 reordered"), "{text}");
    }

    /// The `--kernel` escape hatch: scalar and batch runs are
    /// byte-identical on stdout and in the artifact, and garbage values
    /// are refused.
    #[test]
    fn sweep_kernels_are_byte_identical() {
        let dir = std::env::temp_dir().join("fpga-rt-cli-cmds");
        std::fs::create_dir_all(&dir).unwrap();
        let mut transcripts = Vec::new();
        for kernel in ["batch", "scalar"] {
            let path = dir.join(format!("sweep-k-{kernel}.json"));
            let out_path = path.to_string_lossy().into_owned();
            let mut buf = Vec::new();
            let code = sweep(
                &args(&[
                    "--figure",
                    "fig3a",
                    "--bins",
                    "3",
                    "--per-bin",
                    "8",
                    "--seed",
                    "7",
                    "--kernel",
                    kernel,
                    "--out",
                    &out_path,
                ]),
                &mut buf,
            )
            .unwrap();
            assert_eq!(code, ExitCode::Accepted);
            transcripts.push((String::from_utf8(buf).unwrap(), std::fs::read(&path).unwrap()));
        }
        assert_eq!(transcripts[0].0, transcripts[1].0, "stdout differs across kernels");
        assert_eq!(transcripts[0].1, transcripts[1].1, "--out JSON differs across kernels");
        let err = sweep(&args(&["--kernel", "simd"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains("batch|scalar"), "{err}");
        let err = conform(&args(&["--kernel", "simd"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains("batch|scalar"), "{err}");
    }

    /// Same contract for conform at smoke scale.
    #[test]
    fn conform_kernels_are_byte_identical() {
        let mut transcripts = Vec::new();
        for kernel in ["batch", "scalar"] {
            let mut buf = Vec::new();
            let code = conform(
                &args(&[
                    "--figure",
                    "fig3a",
                    "--bins",
                    "2",
                    "--per-bin",
                    "4",
                    "--sim-horizon",
                    "15",
                    "--seed",
                    "7",
                    "--kernel",
                    kernel,
                ]),
                &mut buf,
            )
            .unwrap();
            assert_eq!(code, ExitCode::Accepted);
            transcripts.push(String::from_utf8(buf).unwrap());
        }
        assert_eq!(transcripts[0], transcripts[1], "stdout differs across kernels");
    }

    #[test]
    fn sweep_writes_csv_when_asked() {
        let dir = std::env::temp_dir().join("fpga-rt-cli-cmds");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.csv");
        let out_path = path.to_string_lossy().into_owned();
        sweep(
            &args(&["--bins", "2", "--per-bin", "4", "--seed", "3", "--out", &out_path]),
            &mut Vec::new(),
        )
        .unwrap();
        let csv = std::fs::read_to_string(&path).unwrap();
        assert!(csv.starts_with("utilization,samples,DP,GN1,GN2,AnyOf"), "{csv}");
        assert_eq!(csv.lines().count(), 3, "header + one row per bin");
    }

    #[test]
    fn sweep_rejects_bad_flags() {
        assert!(sweep(&args(&["--figure", "fig9z"]), &mut Vec::new()).is_err());
        assert!(sweep(&args(&["--bins", "0"]), &mut Vec::new()).is_err());
    }

    /// Satellite bugfix: an explicit `--workers 0` / `--shards 0` (or
    /// garbage) is a usage error at arg-parse time — previously the zero
    /// leaked into (sweep) or was silently corrected by (serve) the
    /// downstream sizing, and garbage silently fell back to the default.
    #[test]
    fn zero_and_garbage_worker_counts_are_rejected() {
        let err = sweep(&args(&["--workers", "0"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains("--workers must be ≥ 1"), "{err}");
        let err = sweep(&args(&["--workers", "abc"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains("positive integer"), "{err}");
        let err = serve(&args(&["--columns", "10", "--shards", "0"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains("--shards must be ≥ 1"), "{err}");
        let err =
            serve(&args(&["--columns", "10", "--workers", "0"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains("--workers must be ≥ 1"), "{err}");
        let err =
            serve(&args(&["--columns", "10", "--sessions", "0"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains("--sessions must be ≥ 1"), "{err}");
        let err =
            serve(&args(&["--columns", "10", "--sessions", "many"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains("positive integer"), "{err}");
        let err = serve(&args(&["--columns", "10", "--exact-margin", "-0.5"]), &mut Vec::new())
            .unwrap_err();
        assert!(err.contains("finite non-negative"), "{err}");
        let err = conform(&args(&["--workers", "0"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains("--workers must be ≥ 1"), "{err}");
        // Gate-relevant numeric flags reject garbage instead of silently
        // gating a default-sized population (`--per-bin 25O` is a typo,
        // not a request for the default).
        let err = conform(&args(&["--per-bin", "25O"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains("positive integer"), "{err}");
        let err = conform(&args(&["--seed", "xyz"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains("unsigned 64-bit"), "{err}");
        let err = sweep(&args(&["--per-bin", "0"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains("--per-bin must be ≥ 1"), "{err}");
        // Omitting the flags keeps the documented defaults working.
        assert!(positive_count(&args(&[]), "workers").unwrap().is_none());
        assert_eq!(parsed_flag(&args(&[]), "seed", 7u64).unwrap(), 7);
    }

    /// Satellite bugfix: `--cache` goes through the same checked-parse
    /// discipline on both serve and loadgen — `0` and garbage are usage
    /// errors (exit code 2), `off` disables, absent means the default.
    #[test]
    fn zero_and_garbage_cache_sizes_are_rejected() {
        for (cmd, base) in [
            (serve as fn(&Args, &mut dyn Write) -> CmdResult, vec!["--columns", "10"]),
            (loadgen, vec![]),
        ] {
            for (value, expect) in [("0", "must be ≥ 1"), ("lots", "positive entry count")] {
                let mut line = base.clone();
                line.extend(["--cache", value]);
                let err = cmd(&args(&line), &mut Vec::new()).unwrap_err();
                assert!(err.contains(expect), "--cache {value}: {err}");
            }
        }
        // The documented spellings parse.
        assert_eq!(cache_entries(&args(&[])).unwrap(), Some(1024));
        assert_eq!(cache_entries(&args(&["--cache", "off"])).unwrap(), None);
        assert_eq!(cache_entries(&args(&["--cache", "64"])).unwrap(), Some(64));
    }

    /// Satellite bugfix: every seed-consuming subcommand routes `--seed`
    /// through the shared checked helper. `generate --seed 12e3` used to
    /// silently emit the default-seed population (`Args::get` swallows
    /// parse failures); now it is a usage error across the board.
    #[test]
    fn garbage_seeds_are_rejected_by_every_subcommand() {
        for (name, result) in [
            ("generate", generate(&args(&["--n", "3", "--seed", "12e3"]), &mut Vec::new())),
            ("sweep", sweep(&args(&["--seed", "12e3"]), &mut Vec::new())),
            ("conform", conform(&args(&["--seed", "12e3"]), &mut Vec::new())),
            ("loadgen", loadgen(&args(&["--seed", "12e3"]), &mut Vec::new())),
        ] {
            let err = result.unwrap_err();
            assert!(err.contains("unsigned 64-bit"), "{name}: {err}");
        }
        // An absent flag still means the documented default seed.
        let mut buf = Vec::new();
        generate(&args(&["--n", "3"]), &mut buf).unwrap();
        let mut buf2 = Vec::new();
        generate(&args(&["--n", "3", "--seed", "42"]), &mut buf2).unwrap();
        assert_eq!(buf, buf2, "default seed is 42");
    }

    /// The conform engine's acceptance criterion at smoke scale: stdout
    /// and the `--out` JSON are byte-identical for `--workers 1` vs `4`,
    /// the report is violation-free, and the exit code says so.
    #[test]
    fn conform_output_is_byte_identical_and_sound() {
        let dir = std::env::temp_dir().join("fpga-rt-cli-cmds");
        std::fs::create_dir_all(&dir).unwrap();
        let mut transcripts = Vec::new();
        for workers in ["1", "4"] {
            let path = dir.join(format!("conform-w{workers}.json"));
            let out_path = path.to_string_lossy().into_owned();
            let mut buf = Vec::new();
            let code = conform(
                &args(&[
                    "--figure",
                    "fig3a",
                    "--bins",
                    "3",
                    "--per-bin",
                    "6",
                    "--sim-horizon",
                    "20",
                    "--seed",
                    "7",
                    "--workers",
                    workers,
                    "--out",
                    &out_path,
                ]),
                &mut buf,
            )
            .unwrap();
            assert_eq!(code, ExitCode::Accepted, "violation at smoke scale");
            transcripts.push((String::from_utf8(buf).unwrap(), std::fs::read(&path).unwrap()));
        }
        assert_eq!(transcripts[0].0, transcripts[1].0, "stdout differs across workers");
        assert_eq!(transcripts[0].1, transcripts[1].1, "--out JSON differs across workers");
        assert!(transcripts[0].0.contains("total soundness violations: 0"));
        let json_text = String::from_utf8(transcripts[0].1.clone()).unwrap();
        let report: fpga_rt_conform::ConformReport =
            serde_json::from_str(&json_text).expect("valid ConformReport JSON");
        assert_eq!(report.series.len(), 4, "DP, GN1, GN2, AnyOf");
    }

    #[test]
    fn conform_writes_multi_figure_csv() {
        let dir = std::env::temp_dir().join("fpga-rt-cli-cmds");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("conform.csv");
        let out_path = path.to_string_lossy().into_owned();
        let code = conform(
            &args(&[
                "--bins",
                "2",
                "--per-bin",
                "2",
                "--sim-horizon",
                "10",
                "--seed",
                "3",
                "--out",
                &out_path,
            ]),
            &mut Vec::new(),
        )
        .unwrap();
        assert_eq!(code, ExitCode::Accepted);
        let csv = std::fs::read_to_string(&path).unwrap();
        assert!(csv.starts_with("workload,evaluator,utilization,"), "{csv}");
        // 4 figures × 4 evaluators × 2 bins rows + header.
        assert_eq!(csv.lines().count(), 1 + 4 * 4 * 2);
        for figure in ["fig3a", "fig3b", "fig4a", "fig4b"] {
            assert!(csv.contains(figure), "missing {figure}");
        }
    }

    #[test]
    fn conform_twod_bridge_mode_runs() {
        let dir = std::env::temp_dir().join("fpga-rt-cli-cmds");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("conform-twod.json");
        let out_path = path.to_string_lossy().into_owned();
        let mut buf = Vec::new();
        let code = conform(
            &args(&[
                "--twod",
                "--samples",
                "20",
                "--bins",
                "4",
                "--sim-horizon",
                "15",
                "--seed",
                "9",
                "--out",
                &out_path,
            ]),
            &mut buf,
        )
        .unwrap();
        assert_eq!(code, ExitCode::Accepted);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("twod-bridge"));
        assert!(text.contains("sim-1d-nf vs native-2d:"));
        let artifact: fpga_rt_conform::TwodBridgeArtifact =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(artifact.counterexamples.is_empty());
        assert_eq!(artifact.report.series.len(), 4);
        assert_eq!(artifact.sim1d.total(), 20);
    }

    #[test]
    fn conform_rejects_bad_flags() {
        assert!(conform(&args(&["--figure", "fig9z"]), &mut Vec::new()).is_err());
        assert!(conform(&args(&["--bins", "0"]), &mut Vec::new()).is_err());
        assert!(conform(&args(&["--sim-horizon", "0"]), &mut Vec::new()).is_err());
        // Mode-mismatched population flags are refused, not ignored.
        let err = conform(&args(&["--twod", "--per-bin", "2000"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains("--samples"), "{err}");
        assert!(conform(&args(&["--twod", "--figure", "fig3a"]), &mut Vec::new()).is_err());
        let err = conform(&args(&["--twod", "--kernel", "scalar"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains("1-D mode"), "{err}");
        let err = conform(&args(&["--samples", "100"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains("--twod"), "{err}");
    }

    /// Satellite bugfix: an unrecognized `--out` / `--metrics-out`
    /// extension is a usage error naming the accepted extensions —
    /// previously each subcommand fell back to JSON for anything that was
    /// not `.csv`, so a typo silently wrote the wrong format.
    #[test]
    fn unknown_artifact_extensions_are_usage_errors() {
        let err = sweep(&args(&["--out", "curves.cvs"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains(".json|.csv"), "{err}");
        let err = conform(&args(&["--out", "report.yaml"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains(".json|.csv"), "{err}");
        // The 2-D bridge artifact is JSON-only.
        let err = conform(&args(&["--twod", "--out", "bridge.csv"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains(".json") && !err.contains(".csv|"), "{err}");
        let err = loadgen(&args(&["--out", "load.txt"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains(".json|.csv"), "{err}");
        // Metrics artifacts are .json|.txt, and the check fires before the
        // session would start reading stdin.
        for argv in [
            vec!["serve", "--columns", "10", "--metrics-out", "m.csv"],
            vec!["loadgen", "--metrics-out", "m.csv"],
            vec!["sweep", "--metrics-out", "m.yaml"],
            vec!["conform", "--metrics-out", "m"],
        ] {
            let line: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
            let code = crate::run(&line, &mut Vec::new());
            assert!(
                matches!(&code, ExitCode::Error(msg) if msg.contains(".json|.txt")),
                "{argv:?}: {code:?}"
            );
        }
        // The 2-D bridge does not thread the registry; refuse, don't ignore.
        let err =
            conform(&args(&["--twod", "--metrics-out", "m.json"]), &mut Vec::new()).unwrap_err();
        assert!(err.contains("1-D mode"), "{err}");
    }

    /// The tentpole's CLI acceptance criterion: for every instrumented
    /// subcommand, the deterministic `--metrics-out` artifact (JSON and
    /// text renderings) is byte-identical for `--workers 1` vs `4`, and
    /// the JSON names the `fpga-rt-obs/1` schema plus the subcommand's
    /// signature counters.
    #[test]
    fn metrics_artifacts_are_byte_identical_across_workers() {
        let dir = std::env::temp_dir().join("fpga-rt-cli-cmds");
        std::fs::create_dir_all(&dir).unwrap();
        let session = dir.join("metrics-session.jsonl");
        std::fs::write(
            &session,
            concat!(
                r#"{"op":"admit","task":{"exec":1.0,"deadline":10.0,"period":10.0,"area":3}}"#,
                "\n",
                r#"{"op":"admit","task":{"exec":2.0,"deadline":6.0,"period":6.0,"area":4}}"#,
                "\n",
                r#"{"op":"query"}"#,
                "\n",
                r#"{"op":"stats"}"#,
                "\n",
            ),
        )
        .unwrap();
        let input = session.to_string_lossy().into_owned();
        let cases: [(&str, &[&str], &str); 4] = [
            (
                "serve",
                &[
                    "serve",
                    "--columns",
                    "24",
                    "--shards",
                    "2",
                    "--batch",
                    "4",
                    "--deterministic",
                    "--input",
                    &input,
                ],
                "admission/decisions",
            ),
            (
                "loadgen",
                &[
                    "loadgen",
                    "--profile",
                    "adversarial",
                    "--ops",
                    "120",
                    "--sessions",
                    "4",
                    "--columns",
                    "16",
                    "--seed",
                    "7",
                    "--deterministic",
                ],
                "loadgen/adversarial/ops",
            ),
            (
                "sweep",
                &[
                    "sweep",
                    "--figure",
                    "fig3a",
                    "--bins",
                    "2",
                    "--per-bin",
                    "4",
                    "--seed",
                    "7",
                    "--deterministic",
                ],
                "sweep/figure/fig3a/samples",
            ),
            (
                "conform",
                &[
                    "conform",
                    "--figure",
                    "fig3a",
                    "--bins",
                    "2",
                    "--per-bin",
                    "2",
                    "--sim-horizon",
                    "10",
                    "--seed",
                    "7",
                    "--deterministic",
                ],
                "conform/figure/fig3a/samples",
            ),
        ];
        for (name, base, signature) in cases {
            for ext in ["json", "txt"] {
                let mut artifacts = Vec::new();
                for workers in ["1", "4"] {
                    let path = dir.join(format!("metrics-{name}-w{workers}.{ext}"));
                    let out_path = path.to_string_lossy().into_owned();
                    let mut argv: Vec<String> = base.iter().map(|s| s.to_string()).collect();
                    argv.extend(
                        ["--workers", workers, "--metrics-out", &out_path]
                            .iter()
                            .map(|s| s.to_string()),
                    );
                    let code = crate::run(&argv, &mut Vec::new());
                    assert!(matches!(code, ExitCode::Accepted), "{name} w{workers}: {code:?}");
                    artifacts.push(std::fs::read_to_string(&path).unwrap());
                }
                assert_eq!(artifacts[0], artifacts[1], "{name} .{ext} differs across workers");
                assert!(artifacts[0].contains(signature), "{name} .{ext}: missing {signature}");
                if ext == "json" {
                    assert!(artifacts[0].contains(fpga_rt_obs::SCHEMA), "{name}: schema missing");
                }
            }
        }
    }

    #[test]
    fn size_finds_minimums() {
        let path = write_taskset("sz.json", &[(1.0, 10.0, 10.0, 5), (1.0, 8.0, 8.0, 3)]);
        let mut buf = Vec::new();
        let code = size(&args(&["--taskset", &path]), &mut buf).unwrap();
        assert_eq!(code, ExitCode::Accepted);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("DP"));
        assert!(text.contains("columns"));
    }

    #[test]
    fn generate_emits_valid_taskset_json() {
        let mut buf = Vec::new();
        generate(&args(&["--n", "5", "--seed", "7"]), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let ts: TaskSet<f64> = serde_json::from_str(text.trim()).unwrap();
        assert_eq!(ts.len(), 5);
        // Deterministic.
        let mut buf2 = Vec::new();
        generate(&args(&["--n", "5", "--seed", "7"]), &mut buf2).unwrap();
        assert_eq!(text, String::from_utf8(buf2).unwrap());
    }

    #[test]
    fn generate_figure_spec() {
        let mut buf = Vec::new();
        generate(&args(&["--figure", "fig4a", "--seed", "1"]), &mut buf).unwrap();
        let ts: TaskSet<f64> =
            serde_json::from_str(String::from_utf8(buf).unwrap().trim()).unwrap();
        assert_eq!(ts.len(), 10);
        assert!(ts.amin() >= 50);
    }
}
