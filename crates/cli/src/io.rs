//! Taskset file I/O for the CLI.

use fpga_rt_model::{Fpga, TaskSet};

/// Load a `TaskSet<f64>` from a JSON file (the serde wire form: an array of
/// `{"exec", "deadline", "period", "area"}` objects).
pub fn load_taskset(path: &str) -> Result<TaskSet<f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("invalid taskset in {path}: {e}"))
}

/// Parse the `--columns` flag into a device.
pub fn device_from(args: &fpga_rt_exp::cli::Args) -> Result<Fpga, String> {
    let columns: u32 = args.get("columns", 0);
    if columns == 0 {
        return Err("--columns N (≥1) is required".into());
    }
    Fpga::new(columns).map_err(|e| e.to_string())
}

/// Resolve the `--taskset` flag and load the file.
pub fn taskset_from(args: &fpga_rt_exp::cli::Args) -> Result<TaskSet<f64>, String> {
    let path = args
        .flags
        .get("taskset")
        .filter(|p| !p.is_empty())
        .ok_or_else(|| "--taskset FILE is required".to_string())?;
    load_taskset(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_rt_exp::cli::Args;

    #[test]
    fn round_trip_through_file() {
        let ts: TaskSet<f64> =
            TaskSet::try_from_tuples(&[(2.10, 5.0, 5.0, 7), (2.00, 7.0, 7.0, 7)]).unwrap();
        let dir = std::env::temp_dir().join("fpga-rt-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("set.json");
        std::fs::write(&path, serde_json::to_string(&ts).unwrap()).unwrap();
        let back = load_taskset(path.to_str().unwrap()).unwrap();
        assert_eq!(back, ts);
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        assert!(load_taskset("/nonexistent/nope.json").is_err());
    }

    #[test]
    fn invalid_json_is_a_clean_error() {
        let dir = std::env::temp_dir().join("fpga-rt-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "[{\"exec\": -1}]").unwrap();
        assert!(load_taskset(path.to_str().unwrap()).is_err());
        // Structurally valid JSON but invalid model (empty set) also fails.
        std::fs::write(&path, "[]").unwrap();
        assert!(load_taskset(path.to_str().unwrap()).is_err());
    }

    #[test]
    fn device_flag_validation() {
        let args = Args::from_args(["--columns", "10"].iter().map(|s| s.to_string()));
        assert_eq!(device_from(&args).unwrap().columns(), 10);
        let args = Args::from_args(std::iter::empty());
        assert!(device_from(&args).is_err());
    }
}
