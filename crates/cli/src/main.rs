//! `fpga-rt` — command-line front-end for the IPDPS'07 EDF schedulability
//! toolkit.
//!
//! ```text
//! fpga-rt check    --taskset set.json --columns 100 [--test any|dp|gn1|gn2|nec] [--exact]
//! fpga-rt simulate --taskset set.json --columns 100 [--scheduler nf|fkf] [--horizon 100]
//!                  [--placement free|first-fit|best-fit|worst-fit]
//!                  [--overhead-per-column X] [--trace]
//! fpga-rt size     --taskset set.json [--max 1000] [--exact]
//! fpga-rt generate --n 10 --seed 42 [--figure fig3b] [--pretty]
//! fpga-rt tables
//! fpga-rt serve    --columns 100 [--shards 4] [--batch 64] [--sessions 4096]
//!                  [--cache 1024|off] [--deterministic]
//! ```
//!
//! Tasksets are JSON arrays of `{"exec": C, "deadline": D, "period": T,
//! "area": A}` objects (the serde form of `TaskSet<f64>`). Exit codes:
//! 0 = accepted / no miss, 1 = rejected / miss, 2 = usage or input error.

use fpga_rt_cli::{run, ExitCode};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args, &mut std::io::stdout()) {
        ExitCode::Accepted => std::process::exit(0),
        ExitCode::Rejected => std::process::exit(1),
        ExitCode::Error(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}
