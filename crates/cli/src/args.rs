//! Shared, checked flag parsers — the single implementation of the CLI's
//! usage-error discipline.
//!
//! Every subcommand resolves its numeric/enum/path flags through this
//! module instead of `Args::get` (which silently falls back to the default
//! on a parse failure — fine for study binaries, wrong for CI-gating
//! subcommands where a typo like `--per-bin 25O` must not quietly gate a
//! different population). All parsers return `Err(String)`, which the
//! dispatcher maps to process exit code 2, so every rejected form produces
//! a uniform usage error. The rejected forms are regression-tested once,
//! centrally, in `commands.rs`.

use fpga_rt_analysis::AnalysisKernel;
use fpga_rt_exp::cli::Args;
use fpga_rt_obs::{Obs, Snapshot};
use fpga_rt_service::Endpoint;

/// Parse `--key` as a count that must be ≥ 1 when given. Returns `None`
/// when the flag is absent (the caller's default applies — e.g. "all
/// cores" for worker counts). An explicit `0` or an unparseable value is
/// a usage error: `Args::get` would silently fall back to the default,
/// which for `--workers 0` / `--shards 0` used to leak the internal
/// "auto" sentinel into, or silently correct, downstream sizing.
pub(crate) fn positive_count(args: &Args, key: &str) -> Result<Option<usize>, String> {
    match args.flags.get(key) {
        None => Ok(None),
        Some(v) => match v.parse::<usize>() {
            Ok(0) => Err(format!("--{key} must be ≥ 1 (omit the flag for the default)")),
            Ok(n) => Ok(Some(n)),
            Err(_) => Err(format!("--{key} expects a positive integer, got {v:?}")),
        },
    }
}

/// Parse `--cache <entries>|off` (serve and loadgen): absent keeps the
/// default 1024-entry per-session verdict cache, `off` disables caching, a
/// positive integer sizes it. `--cache 0` is a usage error rather than a
/// silent alias — it is ambiguous between "off" and "unbounded" — matching
/// the [`positive_count`] convention.
pub(crate) fn cache_entries(args: &Args) -> Result<Option<usize>, String> {
    match args.flags.get("cache").map(String::as_str) {
        None => Ok(Some(1024)),
        Some("off") => Ok(None),
        Some(v) => match v.parse::<usize>() {
            Ok(0) => Err("--cache must be ≥ 1 entries, or `off` to disable caching".into()),
            Ok(n) => Ok(Some(n)),
            Err(_) => Err(format!("--cache expects a positive entry count or `off`, got {v:?}")),
        },
    }
}

/// Parse `--exact-margin` (serve): the knife-edge threshold below which
/// the admission cascade re-checks a decision in exact arithmetic. Must be
/// finite and non-negative; the default is the service's 1e-9.
pub(crate) fn exact_margin(args: &Args) -> Result<f64, String> {
    let margin = parsed_flag(args, "exact-margin", 1e-9f64)?;
    if !(margin.is_finite() && margin >= 0.0) {
        return Err(format!("--exact-margin must be a finite non-negative value, got {margin}"));
    }
    Ok(margin)
}

/// Parse `--listen stdio|tcp://HOST:PORT|unix://PATH` (serve): the
/// transport endpoint, defaulting to stdio when absent. Delegates to
/// [`Endpoint::parse`] so the accepted forms are spelled out once, in
/// the service crate, and every rejected form is a usage error (process
/// exit code 2) naming them.
pub(crate) fn listen_endpoint(args: &Args) -> Result<Endpoint, String> {
    match args.flags.get("listen") {
        None => Ok(Endpoint::Stdio),
        Some(spec) => Endpoint::parse(spec).map_err(|e| format!("--listen: {e}")),
    }
}

/// Parse `--connect tcp://HOST:PORT|unix://PATH` (client): required, and
/// it must name a socket — `stdio` is a listener-side spelling, there is
/// nothing for a client to dial.
pub(crate) fn connect_endpoint(args: &Args) -> Result<Endpoint, String> {
    let Some(spec) = args.flags.get("connect") else {
        return Err("--connect tcp://HOST:PORT or --connect unix://PATH is required".into());
    };
    match Endpoint::parse(spec).map_err(|e| format!("--connect: {e}"))? {
        Endpoint::Stdio => {
            Err("--connect expects a socket endpoint (`tcp://HOST:PORT` or `unix://PATH`), \
                 not `stdio`"
                .into())
        }
        endpoint => Ok(endpoint),
    }
}

/// Parse `--seed` through the shared checked helper (usage error on
/// garbage, the documented default when absent).
pub(crate) fn seed(args: &Args, default: u64) -> Result<u64, String> {
    args.seed(default)
}

/// Parse `--kernel batch|scalar` (default batch). The two kernels are
/// bit-identical by contract — the scalar path exists as an escape hatch
/// and as the reference the batch kernel is cross-checked against.
pub(crate) fn kernel_flag(args: &Args) -> Result<AnalysisKernel, String> {
    match args.flags.get("kernel") {
        None => Ok(AnalysisKernel::default()),
        Some(v) => AnalysisKernel::parse(v)
            .ok_or_else(|| format!("--kernel expects batch|scalar, got {v:?}")),
    }
}

/// An artifact encoding, dispatched on the output file's extension.
///
/// Every file-writing flag (`--out`, `--metrics-out`) resolves its path
/// through [`artifact_target`] against the subcommand's supported set.
/// Unrecognized extensions are usage errors (process exit code 2) naming
/// the accepted extensions — previously each subcommand had its own
/// fallback ("anything that isn't `.csv` is JSON"), so a typo like
/// `--out curves.cvs` silently wrote the wrong format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ArtifactFormat {
    /// Pretty-printed JSON (`.json`).
    Json,
    /// Comma-separated values (`.csv`).
    Csv,
    /// Aligned plain text (`.txt`).
    Text,
}

impl ArtifactFormat {
    const fn extension(self) -> &'static str {
        match self {
            ArtifactFormat::Json => ".json",
            ArtifactFormat::Csv => ".csv",
            ArtifactFormat::Text => ".txt",
        }
    }
}

/// Resolve `--key FILE` against the formats the subcommand supports:
/// `Ok(None)` when the flag is absent (or empty), the path/format pair
/// when the extension matches, and a usage error listing the supported
/// extensions otherwise. Called before the expensive run so a typo fails
/// in milliseconds, not after the population has been evaluated.
pub(crate) fn artifact_target(
    args: &Args,
    key: &str,
    supported: &[ArtifactFormat],
) -> Result<Option<(String, ArtifactFormat)>, String> {
    let Some(path) = args.flags.get(key).filter(|p| !p.is_empty()) else {
        return Ok(None);
    };
    match supported.iter().copied().find(|f| path.ends_with(f.extension())) {
        Some(format) => Ok(Some((path.clone(), format))),
        None => {
            let accepted: Vec<&str> = supported.iter().map(|f| f.extension()).collect();
            Err(format!(
                "--{key} {path:?}: unsupported file extension (expected one of {})",
                accepted.join("|")
            ))
        }
    }
}

/// Parse `--metrics-out FILE.json|FILE.txt`, returning the resolved
/// target plus the [`Obs`] handle the subcommand should instrument with:
/// a live registry (deterministic when asked, so time-valued fields zero
/// and the artifact byte-diffs across `--workers`) when the flag is
/// given, and the no-op [`Obs::off`] otherwise — telemetry must cost
/// nothing unless requested.
pub(crate) fn metrics_target(
    args: &Args,
    deterministic: bool,
) -> Result<(Option<(String, ArtifactFormat)>, Obs), String> {
    let target =
        artifact_target(args, "metrics-out", &[ArtifactFormat::Json, ArtifactFormat::Text])?;
    let obs = if target.is_some() { Obs::on(deterministic) } else { Obs::off() };
    Ok((target, obs))
}

/// Render and write the metrics snapshot to the resolved `--metrics-out`
/// target (no-op when the flag was absent).
pub(crate) fn write_metrics(
    target: &Option<(String, ArtifactFormat)>,
    snapshot: &Snapshot,
) -> Result<(), String> {
    let Some((path, format)) = target else { return Ok(()) };
    let rendered = match format {
        ArtifactFormat::Json => snapshot.render_json(),
        ArtifactFormat::Text => snapshot.render_text(),
        // `metrics_target` only offers .json|.txt.
        ArtifactFormat::Csv => unreachable!("metrics artifacts are .json|.txt"),
    };
    std::fs::write(path, rendered).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Parse `--key` as a typed value, erroring on unparseable input instead
/// of silently using the default (`Args::get` does the latter — fine for
/// study binaries, wrong for CI-gating subcommands where a typo like
/// `--per-bin 25O` must not quietly gate a different population).
pub(crate) fn parsed_flag<T: std::str::FromStr>(
    args: &Args,
    key: &str,
    default: T,
) -> Result<T, String> {
    match args.flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse::<T>().map_err(|_| format!("--{key}: cannot parse {v:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(line: &[&str]) -> Args {
        Args::from_args(line.iter().map(|s| s.to_string()))
    }

    /// Satellite regression: the four shared parsers reject each bad form
    /// once, centrally — subcommand tests only need to check the wiring.
    #[test]
    fn each_rejected_form_is_a_usage_error() {
        // --workers / --shards / any count flag.
        assert!(positive_count(&args(&["--workers", "0"]), "workers")
            .unwrap_err()
            .contains("must be ≥ 1"));
        assert!(positive_count(&args(&["--shards", "abc"]), "shards")
            .unwrap_err()
            .contains("positive integer"));
        assert_eq!(positive_count(&args(&[]), "workers").unwrap(), None);
        assert_eq!(positive_count(&args(&["--workers", "3"]), "workers").unwrap(), Some(3));
        // --cache.
        assert!(cache_entries(&args(&["--cache", "0"])).unwrap_err().contains("must be ≥ 1"));
        assert!(cache_entries(&args(&["--cache", "lots"]))
            .unwrap_err()
            .contains("positive entry count"));
        assert_eq!(cache_entries(&args(&[])).unwrap(), Some(1024));
        assert_eq!(cache_entries(&args(&["--cache", "off"])).unwrap(), None);
        // --seed.
        assert!(seed(&args(&["--seed", "12e3"]), 7).unwrap_err().contains("unsigned 64-bit"));
        assert_eq!(seed(&args(&[]), 7).unwrap(), 7);
        // --exact-margin.
        assert!(exact_margin(&args(&["--exact-margin", "-1"]))
            .unwrap_err()
            .contains("finite non-negative"));
        assert!(exact_margin(&args(&["--exact-margin", "inf"]))
            .unwrap_err()
            .contains("finite non-negative"));
        assert!(exact_margin(&args(&["--exact-margin", "wide"]))
            .unwrap_err()
            .contains("cannot parse"));
        assert_eq!(exact_margin(&args(&[])).unwrap(), 1e-9);
        assert_eq!(exact_margin(&args(&["--exact-margin", "0"])).unwrap(), 0.0);
        // --kernel.
        assert!(kernel_flag(&args(&["--kernel", "simd"])).unwrap_err().contains("batch|scalar"));
        // --listen / --connect endpoints.
        for bad in ["ftp://h:1", "tcp://:7411", "tcp://host", "unix://", "127.0.0.1:7411"] {
            let err = listen_endpoint(&args(&["--listen", bad])).unwrap_err();
            assert!(err.starts_with("--listen:"), "{err}");
            assert!(err.contains("tcp://HOST:PORT") && err.contains("unix://PATH"), "{err}");
        }
        assert_eq!(listen_endpoint(&args(&[])).unwrap(), Endpoint::Stdio);
        assert_eq!(listen_endpoint(&args(&["--listen", "stdio"])).unwrap(), Endpoint::Stdio);
        assert!(matches!(
            listen_endpoint(&args(&["--listen", "tcp://127.0.0.1:0"])).unwrap(),
            Endpoint::Tcp(_)
        ));
        assert!(connect_endpoint(&args(&[])).unwrap_err().contains("is required"));
        assert!(connect_endpoint(&args(&["--connect", "stdio"]))
            .unwrap_err()
            .contains("not `stdio`"));
        assert!(connect_endpoint(&args(&["--connect", "tcp://host:"]))
            .unwrap_err()
            .contains("tcp://HOST:PORT"));
        assert!(matches!(
            connect_endpoint(&args(&["--connect", "unix:///tmp/x.sock"])).unwrap(),
            Endpoint::Unix(_)
        ));
        // --out / --metrics-out extensions.
        assert!(artifact_target(&args(&["--out", "x.yaml"]), "out", &[ArtifactFormat::Json])
            .unwrap_err()
            .contains(".json"));
        assert!(metrics_target(&args(&["--metrics-out", "m.csv"]), true)
            .unwrap_err()
            .contains(".json|.txt"));
        // Typed flags.
        assert!(parsed_flag::<usize>(&args(&["--per-bin", "25O"]), "per-bin", 1)
            .unwrap_err()
            .contains("cannot parse"));
    }
}
