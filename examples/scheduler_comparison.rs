//! Scheduler shoot-out: EDF-NF vs EDF-FkF vs partitioned EDF vs EDF-US on
//! the same random workloads, plus an ASCII Gantt trace of the NF-beats-FkF
//! mechanism from the paper's introduction.
//!
//! ```text
//! cargo run --release --example scheduler_comparison
//! ```

use fpga_rt::gen::TasksetSpec;
use fpga_rt::prelude::*;
use fpga_rt::sim::{partition_taskset, simulate_f64, Horizon, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn accepted(ts: &TaskSet<f64>, fpga: &Fpga, kind: SchedulerKind) -> bool {
    let config =
        SimConfig::default().with_scheduler(kind).with_horizon(Horizon::PeriodsOfTmax(50.0));
    simulate_f64(ts, fpga, &config).map(|o| o.schedulable()).unwrap_or(false)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fpga = Fpga::new(100)?;
    let spec = TasksetSpec {
        n_tasks: 8,
        period_range: (5.0, 20.0),
        exec_factor_range: (0.2, 0.6),
        area_range: (10, 60),
    };
    let mut rng = StdRng::seed_from_u64(2007);
    let n_sets = 300;

    let mut wins = [0usize; 4]; // NF, FkF, P-EDF, EDF-US
    for _ in 0..n_sets {
        let ts = spec.generate(&mut rng);
        if accepted(&ts, &fpga, SchedulerKind::EdfNf) {
            wins[0] += 1;
        }
        if accepted(&ts, &fpga, SchedulerKind::EdfFkf) {
            wins[1] += 1;
        }
        if let Ok(plan) = partition_taskset(&ts, &fpga) {
            if accepted(&ts, &fpga, SchedulerKind::Partitioned(plan)) {
                wins[2] += 1;
            }
        }
        if accepted(&ts, &fpga, SchedulerKind::EdfUs { threshold: 0.5 }) {
            wins[3] += 1;
        }
    }

    println!("schedulable fraction over {n_sets} random 8-task sets (sim, 50·Tmax):");
    for (name, w) in
        [("EDF-NF", wins[0]), ("EDF-FkF", wins[1]), ("P-EDF", wins[2]), ("EDF-US", wins[3])]
    {
        println!("  {:<8} {:>5.1}%", name, 100.0 * w as f64 / n_sets as f64);
    }
    assert!(wins[0] >= wins[1], "Danne's dominance: NF ⊇ FkF");

    // --- The head-of-line blocking mechanism, visualized -----------------
    let demo: TaskSet<f64> = TaskSet::try_from_tuples(&[
        (4.0, 8.0, 8.0, 6), // τ0 wide, earliest deadline
        (4.0, 8.5, 8.5, 5), // τ1 wide: blocked while τ0 runs
        (8.0, 8.8, 8.8, 4), // τ2 narrow: FkF starves it behind τ1
    ])?;
    let small = Fpga::new(10)?;
    println!("\nhead-of-line blocking demo (A(H)=10), first 8.9 time units:");
    for kind in [SchedulerKind::EdfFkf, SchedulerKind::EdfNf] {
        let config = SimConfig::default()
            .with_scheduler(kind.clone())
            .with_horizon(Horizon::Absolute(8.9))
            .with_full_trace();
        let out = simulate_f64(&demo, &small, &config)?;
        let trace: &Trace = out.trace.as_ref().expect("requested");
        println!(
            "{} ({}):",
            kind.name(),
            if out.schedulable() { "meets all deadlines" } else { "MISSES τ2 at 8.8" }
        );
        print!("{}", trace.render_ascii(demo.len(), 60));
    }
    Ok(())
}
