//! Reconfiguration-overhead sensitivity of one concrete design.
//!
//! The paper assumes zero reconfiguration overhead but points out that real
//! partial reconfiguration costs time roughly proportional to the
//! reconfigured area, and that the analysis absorbs it by inflating
//! execution times. This example takes the paper's Table 3 taskset and
//! answers: *how much per-column overhead can this design tolerate?* —
//! empirically (simulation) and analytically (C-inflation + composite
//! test).
//!
//! ```text
//! cargo run --release --example overhead_sensitivity
//! ```

use fpga_rt::analysis::SchedTest;
use fpga_rt::prelude::*;
use fpga_rt::sim::{simulate_f64, Horizon, ReconfigOverhead};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fpga = Fpga::new(10)?;
    let taskset: TaskSet<f64> =
        TaskSet::try_from_tuples(&[(2.10, 5.0, 5.0, 7), (2.00, 7.0, 7.0, 7)])?;
    println!("Table 3 taskset on {fpga}: GN2 accepts at zero overhead\n");

    println!("{:>12} {:>14} {:>22}", "per-column", "simulation", "analysis (C+=oh·A)");
    let suite = AnyOfTest::paper_suite();
    let mut sim_limit = None;
    let mut ana_limit = None;
    for i in 0..=40 {
        let oh = i as f64 * 0.005; // 0 .. 0.2 time units per column
        let config = SimConfig::default()
            .with_scheduler(SchedulerKind::EdfNf)
            .with_horizon(Horizon::PeriodsOfTmax(200.0))
            .with_overhead(ReconfigOverhead::PerColumn(oh));
        let sim_ok = simulate_f64(&taskset, &fpga, &config)?.schedulable();

        let inflated = taskset
            .iter()
            .map(|(_, t)| t.with_exec_inflated(oh * f64::from(t.area())))
            .collect::<Result<Vec<_>, _>>()
            .and_then(TaskSet::new);
        let ana_ok = inflated.map(|ts| suite.is_schedulable(&ts, &fpga)).unwrap_or(false);

        if i % 5 == 0 {
            println!(
                "{:>12.3} {:>14} {:>22}",
                oh,
                if sim_ok { "schedulable" } else { "miss" },
                if ana_ok { "accepted" } else { "rejected" }
            );
        }
        if sim_ok {
            sim_limit = Some(oh);
        }
        if ana_ok {
            ana_limit = Some(oh);
        }
    }

    println!(
        "\nmax tolerated per-column overhead: simulation ≈ {:.3}, analysis ≈ {}",
        sim_limit.unwrap_or(0.0),
        ana_limit.map(|v| format!("{v:.3}")).unwrap_or_else(|| "none".into()),
    );
    println!(
        "(the analytic limit is ≤ the empirical one: inflation + sufficient test\n\
         is conservative, exactly as the paper's assumption-3 remark predicts)"
    );
    Ok(())
}
