//! 2-D reconfigurable scheduling (the paper's future work, §7): rectangle
//! placement, shape-fragmentation, and the column-projection bridge that
//! makes the 1-D analyses sound on 2-D devices.
//!
//! ```text
//! cargo run --release --example twod_placement
//! ```

use fpga_rt::analysis::SchedTest;
use fpga_rt::prelude::*;
use fpga_rt::twod::{project_to_columns, simulate_2d, Device2D, Grid, Sim2DConfig, TaskSet2D};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = Device2D::new(8, 6)?;
    println!("device: {device} ({} CLBs)\n", device.cells());

    // --- Shape fragmentation: area is not placement feasibility ----------
    // Occupy the bottom row plus a full-height pillar in the middle: 35
    // cells stay free, split into a 4×5 and a 3×5 region.
    let mut grid = Grid::new(&device);
    grid.place(8, 1, None).expect("bottom row");
    grid.place(1, 5, Some(fpga_rt::twod::Rect::new(4, 1, 1, 5))).expect("middle pillar");
    println!(
        "{} free cells; does a 5×5 block fit? {} — blocked by shape: {}",
        grid.free_cells(),
        grid.can_place(5, 5),
        grid.blocked_by_shape(5, 5)
    );
    println!("(in the paper's 1-D free-migration model this cannot happen)\n");

    // --- A video-wall pipeline on the 2-D fabric -------------------------
    let taskset: TaskSet2D<f64> = TaskSet2D::try_from_tuples(&[
        (2.0, 10.0, 10.0, 4, 3), // scaler
        (1.5, 8.0, 8.0, 3, 2),   // deinterlacer
        (3.0, 12.0, 12.0, 4, 2), // encoder
        (0.8, 5.0, 5.0, 2, 2),   // osd blender
    ])?;

    let out = simulate_2d(&taskset, &device, &Sim2DConfig::default())?;
    println!(
        "native 2-D EDF-NF simulation: {} ({} jobs, {} shape-blocked dispatches)",
        if out.schedulable() { "schedulable" } else { "MISSES" },
        out.released,
        out.shape_blocks
    );

    // --- The sound 1-D bridge --------------------------------------------
    let (projected, fpga) = project_to_columns(&taskset, &device)?;
    let suite = AnyOfTest::paper_suite();
    let verdict = suite.is_schedulable(&projected, &fpga);
    println!(
        "column projection onto {fpga}: DP∪GN1∪GN2 {}",
        if verdict {
            "accepts → 2-D schedulability GUARANTEED"
        } else {
            "rejects (projection is conservative)"
        }
    );

    // The projection reserves full height; show what that costs.
    let reserved: u32 = taskset.tasks().iter().map(|t| t.w() * device.height()).sum();
    let used: u32 = taskset.tasks().iter().map(|t| t.cells()).sum();
    println!(
        "full-height reservation: {used} CLBs needed, {reserved} reserved ({:.0}% waste)",
        100.0 * (1.0 - f64::from(used) / f64::from(reserved))
    );
    Ok(())
}
