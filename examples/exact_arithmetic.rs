//! Why this library carries exact rational arithmetic: the paper's
//! Table 1 sits on a knife edge where the GN2 verdict is decided by an
//! *exact equality* — invisible (and unstable) in floating point.
//!
//! ```text
//! cargo run --release --example exact_arithmetic
//! ```

use fpga_rt::analysis::{Gn2Config, Gn2Test, SchedTest};
use fpga_rt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fpga = Fpga::new(10)?;

    // Table 1 in exact rationals: C1 = 1.26 = 63/50, C2 = 0.95 = 19/20.
    let r = |n, d| Rat64::new(n, d).unwrap();
    let exact: TaskSet<Rat64> = TaskSet::try_from_tuples(&[
        (r(63, 50), r(7, 1), r(7, 1), 9),
        (r(19, 20), r(5, 1), r(5, 1), 6),
    ])?;

    println!("Table 1 on {fpga}: τ1=(1.26,7,7,9), τ2=(0.95,5,5,6)\n");

    // Inspect GN2's condition 2 at λ = C2/T2 for k = 1.
    let test = Gn2Test::default();
    let attempts = test.attempts_for_task(&exact, &fpga, 0);
    for a in &attempts {
        println!(
            "λ = {:.4}: condition 2 compares LHS = {} with RHS = {}",
            a.lambda, a.lhs2, a.rhs2
        );
    }
    println!();

    // The knife edge, in exact arithmetic: both sides are 69/25.
    let lhs = r(9, 1) * (r(63, 50) / r(7, 1)) + r(6, 1) * (r(19, 20) / r(5, 1));
    let abnd = r(10 - 9 + 1, 1);
    let amin = r(6, 1);
    let rhs = (abnd - amin) * (Rat64::ONE - r(19, 100)) + amin;
    println!("exact LHS = {lhs}, exact RHS = {rhs}  (both 69/25 = 2.76)");
    assert_eq!(lhs, rhs);

    // Strict vs non-strict condition 2 therefore decide the verdict:
    let strict = Gn2Test::default(); // paper's Table-1 behaviour
    let printed = Gn2Test::new(Gn2Config { condition2_strict: false, ..Gn2Config::default() });
    println!(
        "\nGN2 with strict '<'  (reproduces Table 1): {}",
        if strict.is_schedulable(&exact, &fpga) { "accept" } else { "reject" }
    );
    println!(
        "GN2 with printed '≤' (the theorem as typeset): {}",
        if printed.is_schedulable(&exact, &fpga) { "accept" } else { "reject" }
    );

    // In f64 the two sides happen to round to the *same* double on this
    // evaluation path, so the float test agrees with the exact one here —
    // but "the rounded sides coincide" is an observation, not a proof.
    // Only Rat64 demonstrates the equality is exact:
    let float: TaskSet<f64> =
        TaskSet::try_from_tuples(&[(1.26, 7.0, 7.0, 9), (0.95, 5.0, 5.0, 6)])?;
    let f_attempt = &test.attempts_for_task(&float, &fpga, 0)[1];
    println!(
        "\nf64 view of the same comparison: LHS = {:.17}, RHS = {:.17}, diff = {:e}",
        f_attempt.lhs2,
        f_attempt.rhs2,
        f_attempt.lhs2 - f_attempt.rhs2
    );

    // Either way the taskset is actually schedulable — the two tasks can
    // never run concurrently (9 + 6 > 10) and UT = 0.37 ≪ 1.
    let out = sim::simulate(&exact, &fpga, &SimConfig::default())?;
    println!(
        "simulation (EDF-NF, 100·Tmax): {}",
        if out.schedulable() {
            "no deadline miss — rejection is pure test pessimism"
        } else {
            "miss"
        }
    );
    Ok(())
}
