//! Device sizing: how many columns does a given hardware taskset need?
//!
//! At design time the question is inverted from admission control: the
//! taskset is fixed (e.g. the processing kernels of a radar pipeline) and
//! the engineer picks the smallest — cheapest — fabric that passes a
//! schedulability test. Because DP, GN1 and GN2 are incomparable, the
//! minimum size differs per test; the composite gives the best
//! analytically-safe answer, and simulation provides the (unsafe,
//! offsets-0-only) lower bound.
//!
//! ```text
//! cargo run --release --example device_sizing
//! ```

use fpga_rt::analysis::SchedTest;
use fpga_rt::prelude::*;

/// Smallest column count in `[lo, hi]` accepted by `test`, if any.
fn minimal_columns<S: SchedTest<f64>>(
    test: &S,
    ts: &TaskSet<f64>,
    lo: u32,
    hi: u32,
) -> Option<u32> {
    // Acceptance is monotone in device size for all tests here, so binary
    // search applies.
    let mut lo = lo.max(ts.amax());
    let mut hi = hi;
    if !test.is_schedulable(ts, &Fpga::new(hi).ok()?) {
        return None;
    }
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if test.is_schedulable(ts, &Fpga::new(mid).ok()?) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A radar processing pipeline: six kernels.
    let taskset: TaskSet<f64> = TaskSet::try_from_tuples(&[
        (3.0, 12.0, 12.0, 25), // pulse compression
        (2.0, 10.0, 10.0, 18), // doppler filter
        (4.0, 16.0, 16.0, 30), // CFAR detector
        (1.0, 6.0, 6.0, 10),   // beam steering
        (2.5, 14.0, 14.0, 22), // tracker update
        (0.5, 5.0, 5.0, 8),    // telemetry pack
    ])?;
    println!(
        "pipeline: N={} UT={:.3} US={:.1}, widest kernel {} columns\n",
        taskset.len(),
        taskset.time_utilization(),
        taskset.system_utilization(),
        taskset.amax()
    );

    let lo = taskset.amax();
    let hi = 400;

    let dp = minimal_columns(&DpTest::default(), &taskset, lo, hi);
    let gn1 = minimal_columns(&Gn1Test::default(), &taskset, lo, hi);
    let gn2 = minimal_columns(&Gn2Test::default(), &taskset, lo, hi);
    let any = minimal_columns(&AnyOfTest::paper_suite(), &taskset, lo, hi);

    println!("minimal fabric size guaranteed schedulable (EDF, global):");
    for (name, cols) in [("DP", dp), ("GN1", gn1), ("GN2", gn2), ("DP∪GN1∪GN2", any)] {
        match cols {
            Some(c) => println!("  {name:<12} {c:>4} columns"),
            None => println!("  {name:<12} none ≤ {hi}"),
        }
    }

    // Simulation lower bound (synchronous offsets only — NOT a guarantee).
    let mut sim_min = None;
    for cols in lo..=hi {
        let fpga = Fpga::new(cols)?;
        let out = sim::simulate(
            &taskset,
            &fpga,
            &SimConfig::default().with_scheduler(SchedulerKind::EdfNf),
        )?;
        if out.schedulable() {
            sim_min = Some(cols);
            break;
        }
    }
    println!(
        "  {:<12} {:>4} columns (offsets-0 simulation, no guarantee)",
        "SIM-NF",
        sim_min.map(|c| c.to_string()).unwrap_or_else(|| "-".into())
    );

    let analytic = any.expect("composite must size this pipeline");
    let empirical = sim_min.expect("simulation must size this pipeline");
    println!(
        "\nanalytic margin over the empirical lower bound: {} columns ({:+.0}%)",
        analytic - empirical,
        100.0 * (f64::from(analytic) / f64::from(empirical) - 1.0)
    );
    Ok(())
}
