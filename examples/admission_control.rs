//! Online admission control for a reconfigurable accelerator card.
//!
//! Scenario (the kind the paper's introduction motivates): a
//! software-defined-radio platform receives requests to load periodic
//! hardware kernels — FFTs, FIR filters, codecs — each with a period,
//! worst-case execution time and column footprint. The runtime must decide
//! *before loading* whether the new kernel can be admitted without
//! endangering existing deadlines.
//!
//! Strategy: use the workspace's online [`AdmissionController`] — the
//! paper's Section-6 advice ("determine that a taskset is unschedulable
//! only if all tests fail") as a fast→slow cascade: incremental DP, then
//! GN1, then GN2, then an exact rational re-check on knife-edge margins.
//! Each decision reports the tier that settled it. The final admitted set
//! is then cross-checked by simulation.
//!
//! The same controller drives the long-running `fpga-rt serve` JSONL
//! service; this example uses it in-process.
//!
//! ```text
//! cargo run --release --example admission_control
//! ```

use fpga_rt::prelude::*;

struct Request {
    name: &'static str,
    exec: f64,
    period: f64,
    area: u32,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fpga = Fpga::new(100)?;
    let mut controller = AdmissionController::new(fpga, ControllerConfig::default());

    // Arrival stream of kernel-load requests (implicit deadlines).
    let requests = [
        Request { name: "fft-1k", exec: 2.0, period: 10.0, area: 30 },
        Request { name: "fir-64tap", exec: 1.5, period: 8.0, area: 18 },
        Request { name: "viterbi", exec: 4.0, period: 20.0, area: 42 },
        Request { name: "aes-stream", exec: 0.8, period: 5.0, area: 12 },
        Request { name: "h264-me", exec: 9.0, period: 15.0, area: 55 }, // big one
        Request { name: "crc-offload", exec: 0.3, period: 4.0, area: 6 },
        Request { name: "fft-4k", exec: 6.0, period: 12.0, area: 48 },
        Request { name: "resampler", exec: 2.5, period: 9.0, area: 20 },
    ];

    println!("admission control on {fpga} using the dp-inc → gn1 → gn2 → exact cascade\n");

    for req in &requests {
        let candidate = Task::implicit(req.exec, req.period, req.area)?;
        let (decision, _handle) = controller.admit(candidate, false);
        println!(
            "  {:<12} C={:<4} T={:<4} A={:<3} → {:<6} (tier {})",
            req.name,
            req.exec,
            req.period,
            req.area,
            if decision.accepted { "ADMIT" } else { "reject" },
            decision.tier
        );
    }

    let stats = controller.stats();
    println!(
        "\nadmitted {} kernels: UT={:.3}, US={:.1}/{} columns·time \
         (tiers: dp-inc={} gn1={} gn2={} exact={})",
        controller.len(),
        controller.time_utilization(),
        controller.system_utilization(),
        fpga.columns(),
        stats.tiers.dp_inc,
        stats.tiers.gn1,
        stats.tiers.gn2,
        stats.tiers.exact
    );
    let final_set = controller.live().snapshot()?;

    // Safety net: the admitted set must simulate clean under EDF-NF.
    let outcome = sim::simulate(
        &final_set,
        &fpga,
        &SimConfig::default().with_scheduler(SchedulerKind::EdfNf),
    )?;
    println!(
        "simulation cross-check (EDF-NF, 100·Tmax): {}",
        if outcome.schedulable() { "no deadline miss" } else { "MISS — test unsound?!" }
    );
    assert!(outcome.schedulable(), "bound tests are sound; this must hold");
    Ok(())
}
