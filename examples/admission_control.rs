//! Online admission control for a reconfigurable accelerator card.
//!
//! Scenario (the kind the paper's introduction motivates): a
//! software-defined-radio platform receives requests to load periodic
//! hardware kernels — FFTs, FIR filters, codecs — each with a period,
//! worst-case execution time and column footprint. The runtime must decide
//! *before loading* whether the new kernel can be admitted without
//! endangering existing deadlines.
//!
//! Strategy: run the paper's composite test (accept if DP, GN1 or GN2
//! accepts — Section 6: "determine that a taskset is unschedulable only if
//! all tests fail"); rejected kernels are turned away. The final admitted
//! set is then cross-checked by simulation.
//!
//! ```text
//! cargo run --release --example admission_control
//! ```

use fpga_rt::prelude::*;

struct Request {
    name: &'static str,
    exec: f64,
    period: f64,
    area: u32,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fpga = Fpga::new(100)?;
    let suite = AnyOfTest::paper_suite();

    // Arrival stream of kernel-load requests (implicit deadlines).
    let requests = [
        Request { name: "fft-1k", exec: 2.0, period: 10.0, area: 30 },
        Request { name: "fir-64tap", exec: 1.5, period: 8.0, area: 18 },
        Request { name: "viterbi", exec: 4.0, period: 20.0, area: 42 },
        Request { name: "aes-stream", exec: 0.8, period: 5.0, area: 12 },
        Request { name: "h264-me", exec: 9.0, period: 15.0, area: 55 }, // big one
        Request { name: "crc-offload", exec: 0.3, period: 4.0, area: 6 },
        Request { name: "fft-4k", exec: 6.0, period: 12.0, area: 48 },
        Request { name: "resampler", exec: 2.5, period: 9.0, area: 20 },
    ];

    let mut admitted: Vec<Task<f64>> = Vec::new();
    println!("admission control on {fpga} using DP∪GN1∪GN2\n");

    for req in &requests {
        let candidate = Task::implicit(req.exec, req.period, req.area)?;
        let mut trial = admitted.clone();
        trial.push(candidate);
        let trial_set = TaskSet::new(trial)?;
        let ok = trial_set.fits_device(&fpga) && suite.is_schedulable(&trial_set, &fpga);
        println!(
            "  {:<12} C={:<4} T={:<4} A={:<3} → {}",
            req.name,
            req.exec,
            req.period,
            req.area,
            if ok { "ADMIT" } else { "reject" }
        );
        if ok {
            admitted = trial_set.tasks().to_vec();
        }
    }

    let final_set = TaskSet::new(admitted)?;
    println!(
        "\nadmitted {} kernels: UT={:.3}, US={:.1}/{} columns·time",
        final_set.len(),
        final_set.time_utilization(),
        final_set.system_utilization(),
        fpga.columns()
    );

    // Safety net: the admitted set must simulate clean under EDF-NF.
    let outcome = sim::simulate(
        &final_set,
        &fpga,
        &SimConfig::default().with_scheduler(SchedulerKind::EdfNf),
    )?;
    println!(
        "simulation cross-check (EDF-NF, 100·Tmax): {}",
        if outcome.schedulable() { "no deadline miss" } else { "MISS — test unsound?!" }
    );
    assert!(outcome.schedulable(), "bound tests are sound; this must hold");
    Ok(())
}
