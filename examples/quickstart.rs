//! Quickstart: define a hardware taskset, run all three schedulability
//! bound tests, and cross-check with the discrete-event simulator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fpga_rt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 10-column partially runtime-reconfigurable FPGA.
    let fpga = Fpga::new(10)?;

    // Two periodic hardware tasks (C, D, T, area-in-columns) — the paper's
    // Table 3, the example accepted only by the GN2 test.
    let taskset: TaskSet<f64> =
        TaskSet::try_from_tuples(&[(2.10, 5.0, 5.0, 7), (2.00, 7.0, 7.0, 7)])?;

    println!("taskset: N={}", taskset.len());
    println!("  UT(Γ) = {:.3}", taskset.time_utilization());
    println!("  US(Γ) = {:.3} on {}", taskset.system_utilization(), fpga);
    println!("  Amax = {}, Amin = {}", taskset.amax(), taskset.amin());
    println!();

    // The three bound tests of Guan et al. (IPDPS 2007).
    let dp = DpTest::default().check(&taskset, &fpga);
    let gn1 = Gn1Test::default().check(&taskset, &fpga);
    let gn2 = Gn2Test::default().check(&taskset, &fpga);
    for rep in [&dp, &gn1, &gn2] {
        print!("{}", rep.summarize());
    }

    // The composite the paper recommends: accept if ANY test accepts.
    let suite = AnyOfTest::paper_suite();
    let verdict = suite.is_schedulable(&taskset, &fpga);
    println!("\ncomposite DP∪GN1∪GN2: {}", if verdict { "ACCEPTED" } else { "REJECTED" });

    // Cross-check with simulation under both schedulers (synchronous
    // release, 100 periods of the slowest task).
    for kind in [SchedulerKind::EdfFkf, SchedulerKind::EdfNf] {
        let config = SimConfig::default().with_scheduler(kind.clone());
        let outcome = sim::simulate(&taskset, &fpga, &config)?;
        println!(
            "simulation {:>8}: {}",
            kind.name(),
            match outcome.first_miss() {
                None => "no deadline miss".to_string(),
                Some(m) => format!("{} missed at t={:.2}", m.task, m.time),
            }
        );
    }

    // Exact arithmetic for knife-edge verdicts: the same taskset in Rat64.
    let exact = taskset.map_time(|v| Rat64::approx_f64(v, 1_000_000).unwrap())?;
    let exact_verdict = Gn2Test::default().is_schedulable(&exact, &fpga);
    println!(
        "GN2 in exact rational arithmetic: {}",
        if exact_verdict { "accept" } else { "reject" }
    );

    Ok(())
}
