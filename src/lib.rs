//! # fpga-rt — EDF schedulability analysis on reconfigurable hardware
//!
//! Facade crate re-exporting the whole workspace: a production-quality Rust
//! reproduction of *Guan, Gu, Deng, Liu, Yu — "Improved Schedulability
//! Analysis of EDF Scheduling on Reconfigurable Hardware Devices"*
//! (IPDPS 2007).
//!
//! The workspace provides:
//!
//! * [`model`] — task/taskset/device model, exact rational arithmetic
//!   ([`model::Rat64`]) and the [`model::Time`] numeric abstraction;
//! * [`analysis`] — the paper's schedulability bound tests
//!   ([`analysis::DpTest`] — Theorem 1, [`analysis::Gn1Test`] — Theorem 2,
//!   [`analysis::Gn2Test`] — Theorem 3), their multiprocessor ancestors, and
//!   the work-conserving α bounds of Lemmas 1–2;
//! * [`sim`] — a discrete-event simulator of EDF-FkF and EDF-NF hardware
//!   task scheduling (Definitions 1–2), with pluggable placement, optional
//!   reconfiguration overhead, partitioned-EDF and EDF-US extensions;
//! * [`gen`] — synthetic taskset generators reproducing the Section 6
//!   workloads;
//! * [`exp`] — the experiment harness regenerating every table and figure;
//! * [`conform`] — the pool-parallel conformance engine cross-validating
//!   every analytic verdict against the simulator at population scale,
//!   with minimized counterexamples for any soundness violation
//!   (`fpga-rt conform`);
//! * [`pool`] — the deterministic sharded worker pool (ordered results,
//!   panic containment, output invariant in worker count and batch size)
//!   shared by the service session loop and the parallel sweep engine;
//! * [`service`] — the online admission-control runtime: incremental
//!   fast→slow decision cascade (incremental DP → GN1 → GN2 → exact) behind
//!   a batched, sharded JSONL protocol, served over stdio or a
//!   hand-rolled non-blocking TCP / Unix-socket event loop
//!   ([`service::SocketServer`]) through one transport-agnostic engine
//!   ([`service::ServiceCore`]) — `fpga-rt serve --listen …`;
//! * [`loadgen`] — the traffic-shaped load generator: deterministic
//!   Poisson / bursty / adversarial arrival streams replayed against
//!   in-process admission controllers, with HDR-style latency histograms
//!   and the CI-gated latency baselines (`fpga-rt loadgen`);
//! * [`obs`] — the hand-rolled telemetry core: counters, gauges,
//!   log-scale latency histograms and span timers behind a mergeable
//!   [`obs::Registry`] snapshotting to the versioned `fpga-rt-obs/1`
//!   artifact (`--metrics-out`, the JSONL `stats` op), no-op when no
//!   registry is installed and byte-diffable under `--deterministic`.
//!
//! ## Quickstart
//!
//! ```
//! use fpga_rt::prelude::*;
//!
//! // Table 3 of the paper: accepted by GN2, rejected by DP and GN1.
//! let taskset: TaskSet<f64> = TaskSet::try_from_tuples(&[
//!     (2.10, 5.0, 5.0, 7),
//!     (2.00, 7.0, 7.0, 7),
//! ])?;
//! let fpga = Fpga::new(10)?;
//!
//! assert!(!DpTest::default().is_schedulable(&taskset, &fpga));
//! assert!(!Gn1Test::default().is_schedulable(&taskset, &fpga));
//! assert!(Gn2Test::default().is_schedulable(&taskset, &fpga));
//!
//! // The composite test the paper recommends (accept if any test accepts):
//! let any = AnyOfTest::paper_suite();
//! assert!(any.is_schedulable(&taskset, &fpga));
//!
//! // Cross-check with the discrete-event simulator (EDF-NF, offsets 0):
//! let outcome = sim::simulate(&taskset, &fpga, &SimConfig::default().with_scheduler(SchedulerKind::EdfNf))?;
//! assert!(outcome.schedulable());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fpga_rt_2d as twod;
pub use fpga_rt_analysis as analysis;
pub use fpga_rt_conform as conform;
pub use fpga_rt_exp as exp;
pub use fpga_rt_gen as gen;
pub use fpga_rt_loadgen as loadgen;
pub use fpga_rt_model as model;
pub use fpga_rt_obs as obs;
pub use fpga_rt_pool as pool;
pub use fpga_rt_service as service;
pub use fpga_rt_sim as sim;

/// Commonly used items in one import.
pub mod prelude {
    pub use fpga_rt_analysis::{
        AnalysisKernel, AnalysisSeries, AnyOfTest, BatchAnalyzer, DpTest, Gn1Test, Gn2Test,
        IncrementalState, SchedTest, ScratchSpace, TaskSetBatch, TestReport, Verdict,
    };
    pub use fpga_rt_loadgen::{ArrivalProfile, LatencyHistogram, LoadConfig, LoadReport};
    pub use fpga_rt_model::{
        Fpga, LiveTaskSet, ModelError, Rat64, Task, TaskHandle, TaskId, TaskSet, Time,
    };
    pub use fpga_rt_obs::{Obs, Registry, Snapshot, SpanTimer};
    pub use fpga_rt_pool::{PoolConfig, ShardedPool};
    pub use fpga_rt_service::{
        AdmissionController, ClientStream, ControllerConfig, Endpoint, ServeConfig, ServiceCore,
        SocketServer, Tier, TransportConfig,
    };
    pub use fpga_rt_sim::{self as sim, SchedulerKind, SimConfig, SimOutcome};
}
