//! Offline shim of `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! vendored `serde` shim's `Value` data model, parsing the item token stream
//! by hand (the build environment has no crates.io access, hence no
//! `syn`/`quote`). Supported surface — exactly what this workspace uses:
//!
//! * named / tuple / unit structs, possibly generic (inline bounds kept);
//! * enums with unit, tuple and struct variants (externally tagged, the
//!   serde JSON default);
//! * container attributes `#[serde(try_from = "T", into = "T")]` and
//!   `#[serde(bound(serialize = "..", deserialize = ".."))]`.
//!
//! Anything else (field/variant renames, `skip`, `default`, flatten, …)
//! is rejected with a compile-time panic so drift is loud, not silent.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Container-level `#[serde(...)]` attributes we honor.
#[derive(Default)]
struct SerdeAttrs {
    try_from: Option<String>,
    into: Option<String>,
    bound_ser: Option<String>,
    bound_de: Option<String>,
}

struct Field {
    name: String,
    /// Whether the declared type is `Option<...>` — such fields follow real
    /// serde's behaviour of deserializing to `None` when the key is absent.
    is_option: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Data {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    /// Raw generic parameter declarations, e.g. `["T: Time"]`.
    params: Vec<String>,
    /// Bare type-parameter names, e.g. `["T"]`.
    param_names: Vec<String>,
    /// Raw declared `where` predicates (without the keyword), if any.
    where_predicates: Option<String>,
    attrs: SerdeAttrs,
    data: Data,
}

/// Derive `serde::Serialize` (shim).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed).parse().expect("serde_derive shim: generated invalid Serialize impl")
}

/// Derive `serde::Deserialize` (shim).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed).parse().expect("serde_derive shim: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------- parsing

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let mut attrs = SerdeAttrs::default();

    // Outer attributes (doc comments, #[serde(...)], other derives' helpers).
    loop {
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                let Some(TokenTree::Group(g)) = tokens.get(pos + 1) else {
                    panic!("serde_derive shim: malformed attribute");
                };
                parse_attribute(&g.stream(), &mut attrs);
                pos += 2;
            }
            _ => break,
        }
    }

    // Visibility.
    if matches!(tokens.get(pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        pos += 1;
        if matches!(tokens.get(pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            pos += 1;
        }
    }

    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, got {other:?}"),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, got {other:?}"),
    };
    pos += 1;

    // Generic parameters.
    let mut params = Vec::new();
    let mut param_names = Vec::new();
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        pos += 1;
        let mut depth = 1usize;
        let mut current: Vec<TokenTree> = Vec::new();
        let mut entries: Vec<Vec<TokenTree>> = Vec::new();
        loop {
            let tok = tokens
                .get(pos)
                .unwrap_or_else(|| panic!("serde_derive shim: unterminated generics on {name}"))
                .clone();
            pos += 1;
            match &tok {
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    depth += 1;
                    current.push(tok);
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                    current.push(tok);
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    entries.push(std::mem::take(&mut current));
                }
                _ => current.push(tok),
            }
        }
        if !current.is_empty() {
            entries.push(current);
        }
        for entry in entries {
            let raw = tts_to_string(&entry);
            if let Some(TokenTree::Ident(id)) = entry.first() {
                param_names.push(id.to_string());
            }
            params.push(raw);
        }
    }

    // Optional where clause (collect predicates up to the item body).
    let mut where_predicates = None;
    if matches!(tokens.get(pos), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        pos += 1;
        let mut collected: Vec<TokenTree> = Vec::new();
        while let Some(tok) = tokens.get(pos) {
            let stop = match tok {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => true,
                TokenTree::Punct(p) if p.as_char() == ';' => true,
                _ => false,
            };
            if stop {
                break;
            }
            collected.push(tok.clone());
            pos += 1;
        }
        where_predicates = Some(tts_to_string(&collected));
    }

    let data = match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(count_tuple_fields(&g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::UnitStruct,
            other => panic!("serde_derive shim: unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(&g.stream()))
            }
            other => panic!("serde_derive shim: unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("serde_derive shim: unsupported item kind `{other}`"),
    };

    Input { name, params, param_names, where_predicates, attrs, data }
}

/// Parse the bracketed part of one attribute; record `serde` attrs.
fn parse_attribute(stream: &TokenStream, attrs: &mut SerdeAttrs) {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let Some(TokenTree::Ident(id)) = tokens.first() else { return };
    if id.to_string() != "serde" {
        return; // doc comment, #[default], other derives' helpers, ...
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        panic!("serde_derive shim: bare #[serde] attribute is not supported");
    };
    parse_serde_args(&args.stream(), attrs);
}

fn parse_serde_args(stream: &TokenStream, attrs: &mut SerdeAttrs) {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut pos = 0;
    while pos < tokens.len() {
        let key = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: unexpected token in #[serde(...)]: {other:?}"),
        };
        pos += 1;
        match tokens.get(pos) {
            // key = "literal"
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                pos += 1;
                let value = match tokens.get(pos) {
                    Some(TokenTree::Literal(lit)) => unquote(&lit.to_string()),
                    other => {
                        panic!("serde_derive shim: expected string after `{key} =`, got {other:?}")
                    }
                };
                pos += 1;
                match key.as_str() {
                    "try_from" => attrs.try_from = Some(value),
                    "into" => attrs.into = Some(value),
                    "bound" => {
                        attrs.bound_ser = Some(value.clone());
                        attrs.bound_de = Some(value);
                    }
                    other => panic!("serde_derive shim: unsupported serde attribute `{other}`"),
                }
            }
            // key(nested)
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                if key != "bound" {
                    panic!("serde_derive shim: unsupported serde attribute `{key}(...)`");
                }
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut ipos = 0;
                while ipos < inner.len() {
                    let ikey = match &inner[ipos] {
                        TokenTree::Ident(id) => id.to_string(),
                        other => panic!("serde_derive shim: bad bound(...) entry: {other:?}"),
                    };
                    ipos += 1;
                    assert!(
                        matches!(&inner[ipos], TokenTree::Punct(p) if p.as_char() == '='),
                        "serde_derive shim: expected `=` in bound(...)"
                    );
                    ipos += 1;
                    let value = match &inner[ipos] {
                        TokenTree::Literal(lit) => unquote(&lit.to_string()),
                        other => panic!(
                            "serde_derive shim: expected string in bound(...), got {other:?}"
                        ),
                    };
                    ipos += 1;
                    match ikey.as_str() {
                        "serialize" => attrs.bound_ser = Some(value),
                        "deserialize" => attrs.bound_de = Some(value),
                        other => panic!("serde_derive shim: unsupported bound key `{other}`"),
                    }
                    if matches!(inner.get(ipos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                        ipos += 1;
                    }
                }
                pos += 1;
            }
            other => {
                panic!("serde_derive shim: unsupported serde attribute form `{key}`: {other:?}")
            }
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
}

/// Skip any `#[...]` attribute runs starting at `pos`; returns the new pos.
///
/// Rejects `#[serde(...)]` here: this is only used at field/variant level,
/// where the shim supports no serde attributes — skipping one silently
/// (e.g. `rename`, `skip`, `default`) would produce wrong JSON.
fn skip_attributes(tokens: &[TokenTree], mut pos: usize) -> usize {
    while matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(pos + 1) {
            let first = g.stream().into_iter().next();
            if matches!(&first, Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
                panic!(
                    "serde_derive shim: field/variant-level #[serde(...)] attributes \
                     are not supported (found `{}`)",
                    g.stream()
                );
            }
        }
        pos += 2; // '#' + bracket group
    }
    pos
}

fn skip_visibility(tokens: &[TokenTree], mut pos: usize) -> usize {
    if matches!(tokens.get(pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        pos += 1;
        if matches!(tokens.get(pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            pos += 1;
        }
    }
    pos
}

/// Advance past one type, tracking `<...>` nesting, stopping at a top-level
/// comma (not consumed) or end of input. Returns the new position and the
/// consumed type tokens.
fn take_type(tokens: &[TokenTree], mut pos: usize) -> (usize, Vec<TokenTree>) {
    let mut angle = 0usize;
    let start = pos;
    while let Some(tok) = tokens.get(pos) {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle = angle.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
            _ => {}
        }
        pos += 1;
    }
    (pos, tokens[start..pos].to_vec())
}

fn skip_type(tokens: &[TokenTree], pos: usize) -> usize {
    take_type(tokens, pos).0
}

/// Whether a type's tokens name `Option` (bare or via the std/core path).
fn type_is_option(ty: &[TokenTree]) -> bool {
    let idents: Vec<String> = ty
        .iter()
        .filter_map(|t| match t {
            TokenTree::Ident(id) => Some(id.to_string()),
            _ => None,
        })
        .collect();
    match idents.first().map(String::as_str) {
        Some("Option") => true,
        Some("std" | "core") => idents.get(1).map(String::as_str) == Some("option"),
        _ => false,
    }
}

fn parse_named_fields(stream: &TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        pos = skip_visibility(&tokens, skip_attributes(&tokens, pos));
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, got {other:?}"),
        };
        pos += 1;
        assert!(
            matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == ':'),
            "serde_derive shim: expected `:` after field `{name}`"
        );
        pos += 1;
        let (next, ty) = take_type(&tokens, pos);
        pos = next;
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        fields.push(Field { name, is_option: type_is_option(&ty) });
    }
    fields
}

fn count_tuple_fields(stream: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut pos = 0;
    let mut count = 0;
    while pos < tokens.len() {
        pos = skip_visibility(&tokens, skip_attributes(&tokens, pos));
        if pos >= tokens.len() {
            break;
        }
        pos = skip_type(&tokens, pos);
        count += 1;
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    count
}

fn parse_variants(stream: &TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        pos = skip_attributes(&tokens, pos);
        if pos >= tokens.len() {
            break;
        }
        let name = match &tokens[pos] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name, got {other:?}"),
        };
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Tuple(count_tuple_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Struct(parse_named_fields(&g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn tts_to_string(tokens: &[TokenTree]) -> String {
    tokens.iter().cloned().collect::<TokenStream>().to_string()
}

fn unquote(lit: &str) -> String {
    let trimmed = lit
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or_else(|| panic!("serde_derive shim: expected string literal, got {lit}"));
    trimmed.replace("\\\"", "\"").replace("\\\\", "\\")
}

// ---------------------------------------------------------------- codegen

/// `impl<'de?, params> Trait for Name<param_names> where preds` header pieces.
fn impl_header(input: &Input, de: bool) -> (String, String, String) {
    let mut decl = Vec::new();
    if de {
        decl.push("'de".to_string());
    }
    decl.extend(input.params.iter().cloned());
    let decl = if decl.is_empty() { String::new() } else { format!("<{}>", decl.join(", ")) };

    let ty_args = if input.param_names.is_empty() {
        String::new()
    } else {
        format!("<{}>", input.param_names.join(", "))
    };

    let mut preds: Vec<String> = Vec::new();
    if let Some(declared) = &input.where_predicates {
        let trimmed = declared.trim().trim_end_matches(',').trim();
        if !trimmed.is_empty() {
            preds.push(trimmed.to_string());
        }
    }
    let explicit = if de { &input.attrs.bound_de } else { &input.attrs.bound_ser };
    match explicit {
        Some(bound) => {
            if !bound.trim().is_empty() {
                preds.push(bound.clone());
            }
        }
        None => {
            for p in &input.param_names {
                if de {
                    preds.push(format!("{p}: ::serde::Deserialize<'de>"));
                } else {
                    preds.push(format!("{p}: ::serde::Serialize"));
                }
            }
        }
    }
    let where_clause =
        if preds.is_empty() { String::new() } else { format!("where {}", preds.join(", ")) };
    (decl, ty_args, where_clause)
}

fn gen_serialize(input: &Input) -> String {
    let (decl, ty_args, where_clause) = impl_header(input, false);
    let name = &input.name;

    let body = if let Some(proxy) = &input.attrs.into {
        format!(
            "let __proxy: {proxy} = ::core::convert::Into::into(::core::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_value(&__proxy)"
        )
    } else {
        match &input.data {
            Data::NamedStruct(fields) => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0}))",
                            f.name
                        )
                    })
                    .collect();
                format!("::serde::Value::Map(::std::vec::Vec::from([{}]))", entries.join(", "))
            }
            Data::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Data::TupleStruct(n) => {
                let items: Vec<String> =
                    (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
                format!("::serde::Value::Seq(::std::vec::Vec::from([{}]))", items.join(", "))
            }
            Data::UnitStruct => "::serde::Value::Null".to_string(),
            Data::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| {
                        let vname = &v.name;
                        match &v.kind {
                            VariantKind::Unit => format!(
                                "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                            ),
                            VariantKind::Tuple(1) => format!(
                                "{name}::{vname}(__f0) => ::serde::Value::Map(::std::vec::Vec::from([\
                                 (::std::string::String::from(\"{vname}\"), ::serde::Serialize::to_value(__f0))])),"
                            ),
                            VariantKind::Tuple(n) => {
                                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                                let items: Vec<String> = (0..*n)
                                    .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                    .collect();
                                format!(
                                    "{name}::{vname}({binds}) => ::serde::Value::Map(::std::vec::Vec::from([\
                                     (::std::string::String::from(\"{vname}\"), \
                                      ::serde::Value::Seq(::std::vec::Vec::from([{items}])))])),",
                                    binds = binds.join(", "),
                                    items = items.join(", ")
                                )
                            }
                            VariantKind::Struct(fields) => {
                                let binds: Vec<String> =
                                    fields.iter().map(|f| f.name.clone()).collect();
                                let entries: Vec<String> = fields
                                    .iter()
                                    .map(|f| {
                                        format!(
                                            "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value({0}))",
                                            f.name
                                        )
                                    })
                                    .collect();
                                format!(
                                    "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(::std::vec::Vec::from([\
                                     (::std::string::String::from(\"{vname}\"), \
                                      ::serde::Value::Map(::std::vec::Vec::from([{entries}])))])),",
                                    binds = binds.join(", "),
                                    entries = entries.join(", ")
                                )
                            }
                        }
                    })
                    .collect();
                format!("match self {{\n{}\n}}", arms.join("\n"))
            }
        }
    };

    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, clippy::pedantic)]\n\
         impl{decl} ::serde::Serialize for {name}{ty_args} {where_clause} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let (decl, ty_args, where_clause) = impl_header(input, true);
    let name = &input.name;

    let body = if let Some(proxy) = &input.attrs.try_from {
        format!(
            "let __proxy: {proxy} = ::serde::Deserialize::from_value(__value)?;\n\
             <Self as ::core::convert::TryFrom<{proxy}>>::try_from(__proxy)\
             .map_err(::serde::Error::custom)"
        )
    } else {
        match &input.data {
            Data::NamedStruct(fields) => {
                let inits: Vec<String> =
                    fields.iter().map(|f| named_field_init("__map", f)).collect();
                format!(
                    "let __map = __value.as_map().ok_or_else(|| \
                     ::serde::Error::custom(::std::format!(\"expected object for struct {name}, got {{}}\", __value.kind())))?;\n\
                     ::core::result::Result::Ok({name} {{\n{}\n}})",
                    inits.join("\n")
                )
            }
            Data::TupleStruct(1) => format!(
                "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))"
            ),
            Data::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                format!(
                    "let __items = __value.as_seq().ok_or_else(|| \
                     ::serde::Error::custom(\"expected array for tuple struct {name}\"))?;\n\
                     if __items.len() != {n} {{\n\
                         return ::core::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"expected {n} elements for {name}, got {{}}\", __items.len())));\n\
                     }}\n\
                     ::core::result::Result::Ok({name}({}))",
                    items.join(", ")
                )
            }
            Data::UnitStruct => format!("::core::result::Result::Ok({name})"),
            Data::Enum(variants) => gen_enum_deserialize(name, variants),
        }
    };

    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, clippy::pedantic)]\n\
         impl{decl} ::serde::Deserialize<'de> for {name}{ty_args} {where_clause} {{\n\
             fn from_value(__value: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}

/// One `field: ...,` initializer for a named field looked up in `map_var`.
/// `Option` fields mirror real serde: absent key → `None`.
fn named_field_init(map_var: &str, f: &Field) -> String {
    if f.is_option {
        format!(
            "{0}: match ::serde::get_field_opt({map_var}, \"{0}\") {{\n\
             ::core::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
             ::core::option::Option::None => ::core::option::Option::None,\n\
             }},",
            f.name
        )
    } else {
        format!(
            "{0}: ::serde::Deserialize::from_value(::serde::get_field({map_var}, \"{0}\")?)?,",
            f.name
        )
    }
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| format!("\"{0}\" => ::core::result::Result::Ok({name}::{0}),", v.name))
        .collect();

    let payload_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.kind {
                VariantKind::Unit => None,
                VariantKind::Tuple(1) => Some(format!(
                    "\"{vname}\" => ::core::result::Result::Ok(\
                     {name}::{vname}(::serde::Deserialize::from_value(__payload)?)),"
                )),
                VariantKind::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    Some(format!(
                        "\"{vname}\" => {{\n\
                         let __items = __payload.as_seq().ok_or_else(|| \
                         ::serde::Error::custom(\"expected array payload for {name}::{vname}\"))?;\n\
                         if __items.len() != {n} {{\n\
                             return ::core::result::Result::Err(::serde::Error::custom(\
                             \"wrong payload arity for {name}::{vname}\"));\n\
                         }}\n\
                         ::core::result::Result::Ok({name}::{vname}({items}))\n\
                         }}",
                        items = items.join(", ")
                    ))
                }
                VariantKind::Struct(fields) => {
                    let inits: Vec<String> =
                        fields.iter().map(|f| named_field_init("__fields", f)).collect();
                    Some(format!(
                        "\"{vname}\" => {{\n\
                         let __fields = __payload.as_map().ok_or_else(|| \
                         ::serde::Error::custom(\"expected object payload for {name}::{vname}\"))?;\n\
                         ::core::result::Result::Ok({name}::{vname} {{\n{inits}\n}})\n\
                         }}",
                        inits = inits.join("\n")
                    ))
                }
            }
        })
        .collect();

    format!(
        "match __value {{\n\
         ::serde::Value::Str(__s) => match __s.as_str() {{\n\
         {unit_arms}\n\
         __other => ::core::result::Result::Err(::serde::Error::custom(\
         ::std::format!(\"unknown unit variant `{{__other}}` for enum {name}\"))),\n\
         }},\n\
         ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
         let (__tag, __payload) = &__entries[0];\n\
         match __tag.as_str() {{\n\
         {payload_arms}\n\
         __other => ::core::result::Result::Err(::serde::Error::custom(\
         ::std::format!(\"unknown variant `{{__other}}` for enum {name}\"))),\n\
         }}\n\
         }},\n\
         __other => ::core::result::Result::Err(::serde::Error::custom(\
         ::std::format!(\"expected string or single-key object for enum {name}, got {{}}\", __other.kind()))),\n\
         }}",
        unit_arms = unit_arms.join("\n"),
        payload_arms = payload_arms.join("\n"),
    )
}
