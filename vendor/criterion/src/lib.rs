//! Offline shim of the `criterion` API subset this workspace's bench
//! targets use: `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::{iter, iter_batched}`, `BenchmarkId`,
//! `BatchSize`, [`black_box`] and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery it runs a fixed warm-up
//! plus a short measured loop per sample and prints the **fastest
//! sample's mean** `ns/iter` (the minimum is robust against transient
//! host contention, which matters now that the CI perf gate compares
//! `BENCH_*.json` baselines across runs), which keeps `cargo bench`
//! functional and — more importantly for CI — `cargo bench --no-run`
//! compiling the full suite.
//!
//! Two environment variables bound the budget for smoke runs (used by the
//! CI `bench-smoke` job, which only needs every target to *execute* and
//! emit one parseable line per benchmark):
//!
//! * `CRITERION_SHIM_SAMPLES` — samples per benchmark (clamped to 1–8;
//!   default: the group's `sample_size`, itself clamped to 8);
//! * `CRITERION_SHIM_ITERS` — timed iterations per sample (minimum 1,
//!   default 16; warm-up shrinks to match when smaller than 3).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level driver (shim of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 32 }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into().render(), 32, &mut f);
        self
    }
}

/// A named benchmark group (shim of `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured samples (accepted for API compatibility;
    /// the shim scales its short measured loop by it).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().render());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Benchmark a closure that borrows a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().render());
        let mut bound = |b: &mut Bencher| f(b, input);
        run_one(&label, self.sample_size, &mut bound);
        self
    }

    /// Finish the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Benchmark identifier (shim of `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identifier with a function name and a parameter rendered after it.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: function.into(), parameter: Some(parameter.to_string()) }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function: String::new(), parameter: Some(parameter.to_string()) }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { function: s.to_string(), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { function: s, parameter: None }
    }
}

/// Batch sizing hint (shim of `criterion::BatchSize`; ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every single iteration.
    PerIteration,
}

/// Timing harness handed to bench closures (shim of `criterion::Bencher`).
#[derive(Debug, Default)]
pub struct Bencher {
    /// Total measured nanoseconds across all timed iterations.
    elapsed_ns: u128,
    /// Number of timed iterations.
    iterations: u64,
}

/// `CRITERION_SHIM_ITERS` (≥ 1), or the default.
fn timed_iters() -> u64 {
    std::env::var("CRITERION_SHIM_ITERS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(|n| n.max(1))
        .unwrap_or(16)
}

impl Bencher {
    /// Time repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let iters = timed_iters();
        for _ in 0..3u64.min(iters) {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.iterations += iters;
    }

    /// Time `routine` on inputs built by `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let iters = timed_iters();
        for _ in 0..3u64.min(iters) {
            black_box(routine(setup()));
        }
        let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.iterations += iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    // A handful of samples bounded well below criterion's defaults: the
    // shim reports ballpark numbers, not statistics. The env override
    // exists for CI smoke runs and the perf gate.
    let samples = std::env::var("CRITERION_SHIM_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(sample_size)
        .clamp(1, 8);
    // Report the fastest sample's mean ns/iter: the minimum is far more
    // robust against transient host contention than a grand mean, which
    // matters now that BENCH_*.json baselines are compared across runs by
    // the CI perf gate.
    let mut best: Option<u128> = None;
    for _ in 0..samples {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        if bencher.iterations > 0 {
            let per_iter = bencher.elapsed_ns / u128::from(bencher.iterations);
            best = Some(best.map_or(per_iter, |b| b.min(per_iter)));
        }
    }
    match best {
        Some(per_iter) => println!("bench: {label:<60} {per_iter:>12} ns/iter (shim)"),
        None => println!("bench: {label:<60} (no timed iterations)"),
    }
}

/// Declare a benchmark group function (shim of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench binary entry point (shim of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
