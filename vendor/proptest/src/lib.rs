//! Offline shim of the `proptest` subset this workspace uses:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]`, `arg in
//!   strategy` bindings (including tuple patterns) and `#[test]` metas;
//! * [`Strategy`] implemented for integer/float ranges and tuples of
//!   strategies, with the [`Strategy::prop_map`] and
//!   [`Strategy::prop_filter`] combinators;
//! * [`collection::vec`] and the [`prop_assert!`] / [`prop_assert_eq!`]
//!   assertion macros.
//!
//! No shrinking: a failing case panics immediately with the rendered
//! inputs. Case streams are deterministic per test (seeded from the test
//! name), so CI failures reproduce locally.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Test-runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// RNG handed to strategies; newtype so the public surface stays ours.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic per-test generator.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A recipe for generating random values (subset of `proptest::Strategy`;
/// no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (resampling up to a bounded
    /// number of tries, like real proptest's rejection limit).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, whence, pred }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("proptest shim: filter `{}` rejected 1000 consecutive samples", self.whence);
    }
}

/// Strategy yielding one fixed value (subset of `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// Length specification accepted by [`vec()`] (subset of
    /// `proptest::collection::SizeRange` conversions).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "proptest shim: empty length range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "proptest shim: empty length range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy for `Vec`s with lengths drawn from `len` and elements from
    /// `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// `proptest::collection::vec(element, 1..10)`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, len: len.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.rng().gen_range(self.len.lo..=self.len.hi_inclusive);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file imports (subset of
/// `proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

/// Assert inside a property (panics — no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The property-test entry macro; see the crate docs for the supported
/// subset.
#[macro_export]
macro_rules! proptest {
    // With an explicit config.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    // Without one.
    ($(#[$meta:meta])* fn $($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $(#[$meta])* fn $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let ($($arg,)+) = ($($crate::Strategy::sample(&($strategy), &mut __rng),)+);
                $body
            }
        }
    )*};
}
