//! Offline shim of `serde_json`: JSON text ⇄ the vendored `serde` shim's
//! [`Value`] tree. Supports exactly the three entry points this workspace
//! uses — [`to_string`], [`to_string_pretty`] and [`from_str`] — with
//! serde_json-compatible output conventions (floats always carry a decimal
//! point or exponent, objects keep field order, non-finite floats become
//! `null`).

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error produced by JSON parsing or typed reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Crate-level result alias, mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize a value to two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into a typed value.
pub fn from_str<T: for<'de> Deserialize<'de>>(text: &str) -> Result<T> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", parser.pos)));
    }
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------- writing

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` keeps a `.0` on integral floats and round-trips,
                // matching serde_json's output closely enough for tests.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn consume_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected character {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject rather than mangle.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("unsupported \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape {:?}",
                                other.map(|b| b as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty by construction");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII by construction");
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v: Vec<(String, f64)> = vec![("a\n\"x\"".to_string(), 1.0), ("b".to_string(), -2.5)];
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        let back: Vec<(String, f64)> = from_str(&compact).unwrap();
        let back_pretty: Vec<(String, f64)> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
        assert_eq!(back_pretty, v);
        assert!(compact.contains("1.0"), "floats keep a decimal point: {compact}");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<f64>("").is_err());
        assert!(from_str::<f64>("1.0 x").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<bool>("truth").is_err());
    }

    #[test]
    fn parses_nested_structures() {
        let v: Vec<Vec<u32>> = from_str("[[1,2],[],[3]]").unwrap();
        assert_eq!(v, vec![vec![1, 2], vec![], vec![3]]);
        let opt: Option<u32> = from_str("null").unwrap();
        assert_eq!(opt, None);
    }

    #[test]
    fn missing_option_field_deserializes_to_none() {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Probe {
            required: u32,
            maybe: Option<u32>,
        }
        // Absent Option key → None (real serde behaviour); absent required
        // key → error naming the field.
        let p: Probe = from_str(r#"{"required":1}"#).unwrap();
        assert_eq!(p, Probe { required: 1, maybe: None });
        let p: Probe = from_str(r#"{"required":1,"maybe":2}"#).unwrap();
        assert_eq!(p.maybe, Some(2));
        let err = from_str::<Probe>(r#"{"maybe":2}"#).unwrap_err();
        assert!(err.to_string().contains("missing field `required`"), "{err}");
    }
}
