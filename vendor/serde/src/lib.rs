//! Offline shim of the `serde` facade.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, API-compatible subset of serde sufficient for the
//! sources in this repository: the [`Serialize`] / [`Deserialize`] traits,
//! the derive macros (re-exported from `serde_derive`, which supports the
//! container attributes `try_from`, `into` and `bound` used here), and a
//! JSON-shaped [`Value`] tree as the data model.
//!
//! Unlike real serde there is no `Serializer`/`Deserializer` abstraction:
//! serialization always goes through [`Value`], and `serde_json` (also
//! vendored) is the only format. Swapping in the real crates later is a
//! `Cargo.toml`-only change as long as code sticks to derives plus
//! `serde_json::{to_string, to_string_pretty, from_str}`.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// JSON-shaped data model every serializable type lowers to.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrow the elements if this is an array.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Human-readable name of the JSON type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Error produced while lowering a [`Value`] into a typed structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any displayable message (mirrors
    /// `serde::de::Error::custom`).
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can lower itself to a [`Value`].
pub trait Serialize {
    /// Lower `self` to the data model.
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from a [`Value`].
///
/// The `'de` lifetime exists only for signature compatibility with real
/// serde bounds such as `T: Deserialize<'de>`; this shim always copies out
/// of the value tree.
pub trait Deserialize<'de>: Sized {
    /// Rebuild `Self` from the data model.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Owned-deserialization alias, mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Look up a required struct field in a map value (derive-internal helper).
pub fn get_field<'a>(entries: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    get_field_opt(entries, name).ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

/// Look up an optional struct field in a map value (derive-internal helper;
/// `Option` fields deserialize to `None` when the key is absent, mirroring
/// real serde).
pub fn get_field_opt<'a>(entries: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let (n, ok) = match *value {
                    Value::Int(n) => (n as i128, i128::from(n) >= <$t>::MIN as i128 && i128::from(n) <= <$t>::MAX as i128),
                    Value::UInt(n) => (n as i128, i128::from(n) <= <$t>::MAX as i128),
                    _ => return Err(Error::custom(format!(
                        concat!("expected integer for ", stringify!($t), ", got {}"), value.kind()))),
                };
                if ok {
                    Ok(n as $t)
                } else {
                    Err(Error::custom(concat!("integer out of range for ", stringify!($t))))
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if *self <= i64::MAX as u64 {
            Value::Int(*self as i64)
        } else {
            Value::UInt(*self)
        }
    }
}

impl<'de> Deserialize<'de> for u64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::Int(n) if n >= 0 => Ok(n as u64),
            Value::UInt(n) => Ok(n),
            _ => Err(Error::custom(format!("expected unsigned integer, got {}", value.kind()))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::Float(x) => Ok(x),
            Value::Int(n) => Ok(n as f64),
            Value::UInt(n) => Ok(n as f64),
            _ => Err(Error::custom(format!("expected number, got {}", value.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::custom(format!("expected bool, got {}", value.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom(format!("expected string, got {}", value.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom(format!("expected array, got {}", value.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_seq()
                    .ok_or_else(|| Error::custom(format!("expected array tuple, got {}", value.kind())))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected array of length {expected}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}
