//! Offline shim of the `rand` 0.8 API subset this workspace uses:
//! [`Rng::gen_range`] over half-open and inclusive ranges,
//! [`Rng::gen`] for `f64`/`bool`, [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — deterministic,
//! portable, and stable across platforms and releases, which the generator
//! crates rely on for reproducible experiments. It is **not** the same
//! stream as real `rand`'s `StdRng` (ChaCha12), so pinned-value tests must
//! pin against this shim's stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core 64-bit generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample uniformly from a range, e.g. `rng.gen_range(0.0..1.0)` or
    /// `rng.gen_range(1u32..=100)`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Sample a value from the "standard" distribution (`f64` in `[0, 1)`,
    /// uniform `bool`, full-range integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53-bit resolution in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges samplable by [`Rng::gen_range`] (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range requires start < end");
        // `start + u*(end-start)` can round up to exactly `end` even with
        // u < 1; resample to keep the half-open contract.
        loop {
            let u = f64::sample_standard(rng);
            let v = self.start + u * (self.end - self.start);
            if v < self.end {
                return v;
            }
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range requires start <= end");
        // Half-open draw with 1-ulp closure; clamp because the affine map
        // can overshoot either bound by rounding.
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        (lo + u * (hi - lo)).clamp(lo, hi)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range requires start < end");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = bounded_u128(rng, span);
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range requires start <= end");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = bounded_u128(rng, span);
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Uniform draw in `[0, span)` by rejection from the top 64 bits.
fn bounded_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // span ≤ 2^65 here (i64/u64 ranges); draw 128 bits and reject the
    // biased tail.
    let zone = u128::MAX - (u128::MAX - span + 1) % span;
    loop {
        let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if draw <= zone {
            return draw % span;
        }
    }
}

/// Shipped generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic, portable standard generator (xoshiro256++ seeded via
    /// SplitMix64). Not the same stream as real `rand`'s ChaCha12 `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(5.0..20.0);
            assert!((5.0..20.0).contains(&f));
            let g = rng.gen_range(0.25f64..=1.0);
            assert!((0.25..=1.0).contains(&g));
            let a = rng.gen_range(1u32..=100);
            assert!((1..=100).contains(&a));
            let n = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&n));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn integer_ranges_cover_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..=4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }
}
