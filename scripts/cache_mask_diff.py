#!/usr/bin/env python3
"""Diff two ``fpga-rt-obs/1`` JSON snapshots modulo the verdict cache.

The verdict cache's byte-identity contract (docs/PROTOCOL.md, "The
verdict cache") allows a cache-on and a cache-off run to differ in
exactly one place: the ``admission/cache/*`` counter and gauge rows.
Everything else — meta, every other counter, every histogram (stage
sample *counts* included: hits replay them as zero-valued recordings)
— must match row for row. This script drops the cache rows from both
snapshots and fails listing every remaining difference.

Usage: cache_mask_diff.py <cache-on.json> <cache-off.json>
"""

import json
import sys

CACHE_PREFIX = "admission/cache/"


def masked(path):
    with open(path) as f:
        doc = json.load(f)
    for section in ("counters", "gauges"):
        doc[section] = [
            row for row in doc.get(section, []) if not row["name"].startswith(CACHE_PREFIX)
        ]
    return doc


def rows(doc):
    out = {}
    for section in ("meta", "counters", "gauges", "histograms"):
        for row in doc.get(section, []):
            key = row.get("name") or row.get("key")
            out[f"{section}/{key}"] = row
    for scalar in ("schema", "runner", "deterministic"):
        out[scalar] = doc.get(scalar)
    return out


def main(argv):
    if len(argv) != 3:
        sys.exit(__doc__.strip())
    a, b = rows(masked(argv[1])), rows(masked(argv[2]))
    diffs = []
    for key in sorted(set(a) | set(b)):
        if a.get(key) != b.get(key):
            diffs.append(f"  {key}:\n    {argv[1]}: {a.get(key)}\n    {argv[2]}: {b.get(key)}")
    if diffs:
        print("masked snapshots differ outside admission/cache/*:", file=sys.stderr)
        print("\n".join(diffs), file=sys.stderr)
        return 1
    print(f"masked snapshots identical: {argv[1]} == {argv[2]} (mod {CACHE_PREFIX}*)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
