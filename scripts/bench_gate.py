#!/usr/bin/env python3
"""Render and compare fpga-rt bench-smoke and loadgen-smoke baselines.

Two subcommands:

  render  <bench-output.txt> <out.json>
      Parse the criterion shim's ``bench: <name> <N> ns/iter (shim)``
      lines into a ``fpga-rt-bench-smoke/2`` JSON document. The shim
      budget is recorded from CRITERION_SHIM_SAMPLES / CRITERION_SHIM_ITERS
      so a comparison can refuse mismatched budgets.

  compare <baseline.json> <current.json> [--threshold 1.25]
          [--min-ns 50000] [--summary FILE]
      Print a per-metric delta table (GitHub-flavoured markdown, also
      appended to --summary when given, e.g. $GITHUB_STEP_SUMMARY) and
      exit 1 when any *tracked* metric regressed beyond the threshold or
      disappeared. A metric is tracked when its baseline time is at least
      --min-ns: rows below the floor are dominated by timer noise and are
      reported but never gated.

      Both documents must share a schema family:

      * ``fpga-rt-bench-smoke/2`` — micro-bench rows keyed by bench name,
        value ``ns_per_iter``; budget is the (samples, iters) shim pair.
      * ``fpga-rt-loadgen-smoke/1`` — end-to-end latency rows derived from
        ``fpga-rt loadgen --out`` reports as ``<profile>/p50`` and
        ``<profile>/p99`` in nanoseconds; budget is the full loadgen
        budget object (ops, sessions, rounds, columns, seed,
        deterministic). Loadgen latency gates should pass a lower
        ``--min-ns`` (admission decisions are single-digit µs).
      * ``fpga-rt-obs/1`` — telemetry snapshots written by
        ``fpga-rt <serve|loadgen|sweep|conform> --metrics-out``. Rows are
        the histogram quantiles as ``<histogram>/p50`` and
        ``<histogram>/p99`` in nanoseconds; budget is the snapshot's
        ``meta`` block (mode, figure/profile, population sizing, seed,
        deterministic). Only non-deterministic snapshots carry non-zero
        times worth gating.

      A budget mismatch between baseline and current always fails — the
      numbers are not comparable. A runner-platform mismatch downgrades
      the gate to report-only unless --gate-across-runners is given.

The committed baselines live at BENCH_5.json (micro-bench) and
BENCH_6.json (loadgen latency) in the repository root; see
docs/BENCHMARKS.md for the regeneration workflow.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import sys

SCHEMA = "fpga-rt-bench-smoke/2"
LOADGEN_SCHEMA = "fpga-rt-loadgen-smoke/1"
BENCH_LINE = re.compile(r"^bench:\s+(.*?)\s+(\d+)\s+ns/iter \(shim\)$")


def render(args: argparse.Namespace) -> int:
    rows = []
    with open(args.bench_output, encoding="utf-8") as f:
        for line in f:
            m = BENCH_LINE.match(line.strip())
            if m:
                rows.append({"name": m.group(1).strip(), "ns_per_iter": int(m.group(2))})
    if not rows:
        print("bench_gate: no 'ns/iter (shim)' lines parsed", file=sys.stderr)
        return 1
    doc = {
        "schema": SCHEMA,
        "commit": os.environ.get("GITHUB_SHA", "unknown"),
        "ref": os.environ.get("GITHUB_REF", "unknown"),
        "runner": platform.platform(),
        "samples": os.environ.get("CRITERION_SHIM_SAMPLES", "default"),
        "iters": os.environ.get("CRITERION_SHIM_ITERS", "default"),
        "benchmarks": rows,
    }
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"bench_gate: captured {len(rows)} benchmarks into {args.out}")
    return 0


def family(doc: dict) -> str:
    schema = str(doc.get("schema", ""))
    if schema.startswith("fpga-rt-loadgen-smoke/"):
        return "loadgen"
    if schema.startswith("fpga-rt-bench-smoke/"):
        return "bench"
    if schema.startswith("fpga-rt-obs/"):
        return "obs"
    raise SystemExit(f"bench_gate: unknown schema {schema!r}")


def load(path: str) -> dict:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    family(doc)  # refuse unknown documents early, with the schema named
    return doc


def rows_of(doc: dict) -> dict:
    """Flatten a document into comparable ``name -> nanoseconds`` rows."""
    kind = family(doc)
    if kind == "loadgen":
        rows = {}
        for p in doc["profiles"]:
            rows[f"{p['profile']}/p50"] = int(p["latency"]["p50_ns"])
            rows[f"{p['profile']}/p99"] = int(p["latency"]["p99_ns"])
        return rows
    if kind == "obs":
        rows = {}
        for h in doc.get("histograms", []):
            rows[f"{h['name']}/p50"] = int(h["p50"])
            rows[f"{h['name']}/p99"] = int(h["p99"])
        return rows
    return {b["name"]: b["ns_per_iter"] for b in doc["benchmarks"]}


def budget_of(doc: dict):
    """The workload-sizing knobs that must match for deltas to mean anything."""
    kind = family(doc)
    if kind == "loadgen":
        budget = doc.get("budget", {})
        return tuple(sorted((k, str(v)) for k, v in budget.items()))
    if kind == "obs":
        return tuple(sorted((m["key"], str(m["value"])) for m in doc.get("meta", [])))
    return (str(doc.get("samples")), str(doc.get("iters")))


def budget_text(doc: dict) -> str:
    kind = family(doc)
    if kind in ("loadgen", "obs"):
        return ", ".join(f"{k}={v}" for k, v in budget_of(doc))
    return f"samples={doc.get('samples')}, iters={doc.get('iters')}"


def compare(args: argparse.Namespace) -> int:
    baseline = load(args.baseline)
    current = load(args.current)
    if family(baseline) != family(current):
        raise SystemExit(
            f"bench_gate: schema families differ ({baseline.get('schema')!r} vs "
            f"{current.get('schema')!r}) — micro-bench and loadgen documents "
            "are not comparable"
        )
    base_rows = rows_of(baseline)
    cur_rows = rows_of(current)
    unit = "ns/iter" if family(baseline) == "bench" else "ns"
    kind = {"loadgen": "latency", "obs": "telemetry"}.get(family(baseline), "bench")

    budget_mismatch = budget_of(baseline) != budget_of(current)

    lines = [
        f"### Perf gate: {kind} deltas vs committed baseline",
        "",
        f"Baseline `{args.baseline}` (commit `{baseline.get('commit', '?')[:12]}`, "
        f"{budget_text(baseline)}) vs current "
        f"({budget_text(current)}). "
        f"Gate: tracked rows (baseline ≥ {args.min_ns} ns) must stay within "
        f"{args.threshold:.2f}x.",
        "",
        f"| {kind} | baseline {unit} | current {unit} | delta | tracked | verdict |",
        "|---|---:|---:|---:|:-:|:-:|",
    ]

    regressions = []
    for name in sorted(base_rows):
        base = base_rows[name]
        tracked = base >= args.min_ns
        cur = cur_rows.get(name)
        if cur is None:
            lines.append(f"| `{name}` | {base} | — | — | {'yes' if tracked else 'no'} | MISSING |")
            if tracked:
                regressions.append(f"{name}: missing from current run")
            continue
        ratio = cur / base if base else float("inf")
        delta = f"{(ratio - 1.0) * 100.0:+.1f}%"
        if tracked and ratio > args.threshold:
            verdict = "FAIL"
            regressions.append(f"{name}: {base} → {cur} {unit} ({delta})")
        else:
            verdict = "ok"
        lines.append(
            f"| `{name}` | {base} | {cur} | {delta} | {'yes' if tracked else 'no'} | {verdict} |"
        )
    for name in sorted(set(cur_rows) - set(base_rows)):
        lines.append(
            f"| `{name}` | — | {cur_rows[name]} | — | no | NEW (regen baseline) |"
        )

    lines.append("")
    if budget_mismatch:
        lines.append(
            "**Workload budgets differ between baseline and current run — deltas are "
            "not comparable; regenerate the baseline (docs/BENCHMARKS.md).**"
        )
        regressions.append("budget mismatch")
    if regressions:
        lines.append(f"**{len(regressions)} tracked regression(s) > {args.threshold:.2f}x:**")
        lines.extend(f"- {r}" for r in regressions)
    else:
        lines.append("All tracked benches within threshold.")

    # Times are only comparable within one runner hardware class: a
    # baseline blessed on a laptop must not block (or vacuously pass) CI
    # on a different machine. On mismatch the table is still printed and
    # uploaded, but the gate goes report-only until the baseline is
    # re-blessed from the bench-smoke artifact (docs/BENCHMARKS.md).
    runner_mismatch = str(baseline.get("runner")) != str(current.get("runner"))
    if runner_mismatch and not args.gate_across_runners:
        lines.append("")
        baseline_name = {
            "loadgen": "BENCH_6.json",
            "bench": "BENCH_5.json",
            "obs": "the committed telemetry baseline",
        }[family(baseline)]
        lines.append(
            f"**Runner mismatch: baseline `{baseline.get('runner')}` vs current "
            f"`{current.get('runner')}` — deltas reported but NOT gated. Re-bless "
            f"{baseline_name} from this runner class (docs/BENCHMARKS.md) to arm the gate.**"
        )
        # A budget mismatch is a workflow misconfiguration and still fails.
        regressions = [r for r in regressions if r == "budget mismatch"]

    table = "\n".join(lines) + "\n"
    print(table)
    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as f:
            f.write(table)
    return 1 if regressions else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_render = sub.add_parser("render", help="parse bench output into a baseline JSON")
    p_render.add_argument("bench_output")
    p_render.add_argument("out")
    p_render.set_defaults(func=render)

    p_compare = sub.add_parser("compare", help="diff a current run against a baseline")
    p_compare.add_argument("baseline")
    p_compare.add_argument("current")
    p_compare.add_argument("--threshold", type=float, default=1.25)
    p_compare.add_argument("--min-ns", type=int, default=50_000)
    p_compare.add_argument("--summary", default=None)
    p_compare.add_argument(
        "--gate-across-runners",
        action="store_true",
        help="enforce the threshold even when the baseline was recorded on a "
        "different runner platform (default: report-only on mismatch)",
    )
    p_compare.set_defaults(func=compare)

    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
